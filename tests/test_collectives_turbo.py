"""The collectives on the fast lane: differential backend equivalence,
plan compilers, round trips, replay, and cache hits.

Three byte-identities are pinned here, per collective family and
rational lambda:

* **exact vs turbo run** — completion, send count, metrics, and trace
  multiset agree bit for bit on both backends and both contention
  policies (the broad grid lives in ``tests/test_turbo_equivalence.py``,
  which parametrizes over *all* oracle families; this suite focuses the
  collective corner and adds the plan layer);
* **plan vs static builder** — ``compile_plan(family, ...)``'s
  ``to_schedule()`` equals the matching ``repro.collectives`` static
  builder event for event;
* **plan vs replay** — replaying the plan on the turbo loop realizes
  exactly the planned events.

Plus: serialization round trip, ``plan_m`` message-count
canonicalization (an ``m = 1`` request and the stored ``m_eff`` plan
share one cache entry), and the audit split — collective plans pass
:meth:`~repro.plan.columns.SchedulePlan.audit_ports` but are *not*
broadcasts, so the full :meth:`~repro.plan.columns.SchedulePlan.audit`
must reject them.
"""

from array import array
from collections import Counter

import pytest

from repro.collectives import (
    allgather_schedule,
    allreduce_schedule,
    alltoall_schedule,
    barrier_schedule,
    bruck_schedule,
    gather_schedule,
    gossip_ring_schedule,
    reduce_schedule,
    scatter_schedule,
)
from repro.conformance.oracles import collective_families, get_oracle
from repro.errors import InvalidParameterError, ScheduleError, SimultaneousIOError
from repro.plan import (
    PlanCache,
    SchedulePlan,
    build_plan,
    collective_plan_families,
    compile_plan,
    plan_families,
    plan_m,
)
from repro.postal.machine import ContentionPolicy
from repro.postal.runner import run_protocol
from repro.turbo.ticks import TickDomain
from repro.types import as_time

LAMBDAS = ["1", "3/2", "2", "5/2", "7/3"]
SIZES = [1, 2, 3, 5, 9, 12]

#: family -> static builder (the reference each plan must reproduce).
STATIC_BUILDERS = {
    "ALLGATHER": allgather_schedule,
    "ALLREDUCE": allreduce_schedule,
    "ALLTOALL": alltoall_schedule,
    "BARRIER": barrier_schedule,
    "BRUCK-ALLGATHER": bruck_schedule,
    "GATHER": gather_schedule,
    "GOSSIP-RING": gossip_ring_schedule,
    "REDUCE": reduce_schedule,
    "SCATTER": scatter_schedule,
}


def _static_events(family, n, lam):
    built = STATIC_BUILDERS[family](n, lam)
    return tuple(sorted(getattr(built, "events", built)))


def test_registries_agree():
    """Every collective oracle family has a plan compiler and a static
    builder, and vice versa."""
    assert set(collective_plan_families()) == set(STATIC_BUILDERS)
    assert set(collective_plan_families()) == set(collective_families())
    assert not set(collective_plan_families()) & set(plan_families())


# ------------------------------------------------- backend equivalence


def _fingerprint(oracle, n, lam, policy, backend):
    proto = oracle.protocol(n=n, m=1, lam=lam)  # fresh: protocols hold state
    res = run_protocol(proto, policy=policy, backend=backend)
    records = (
        res.system.flush_trace()
        if backend == "turbo"
        else res.system.tracer.records()
    )
    return {
        "completion": res.completion_time,
        "sends": res.sends,
        "metrics": res.metrics,
        "trace": Counter((r.time, r.kind) for r in records),
    }


@pytest.mark.parametrize("lam_str", LAMBDAS)
@pytest.mark.parametrize("family", sorted(STATIC_BUILDERS))
def test_collective_backends_agree_bitwise(family, lam_str):
    oracle = get_oracle(family)
    lam = as_time(lam_str)
    for n in (2, 5, 9):
        for policy in (ContentionPolicy.STRICT, ContentionPolicy.QUEUED):
            exact = _fingerprint(oracle, n, lam, policy, "exact")
            turbo = _fingerprint(oracle, n, lam, policy, "turbo")
            ctx = f"{family} n={n} lam={lam_str} {policy.value}"
            for key in ("completion", "sends", "metrics", "trace"):
                assert exact[key] == turbo[key], f"{ctx}: {key} differs"
            assert exact["completion"] == oracle.time(n, 1, lam), ctx


# ----------------------------------------------- plan vs static builder


@pytest.mark.parametrize("lam_str", LAMBDAS)
@pytest.mark.parametrize("family", sorted(STATIC_BUILDERS))
def test_plan_matches_static_builder(family, lam_str):
    lam = as_time(lam_str)
    oracle = get_oracle(family)
    for n in SIZES:
        plan = compile_plan(family, n, 1, lam_str, validate=True)
        assert plan.m == plan_m(family, n, 1)
        got = plan.to_schedule().events
        assert got == _static_events(family, n, lam), (family, n, lam_str)
        if n >= 2:
            assert plan.completion_time() == oracle.time(n, 1, lam)
        else:
            assert len(plan) == 0


@pytest.mark.parametrize("family", sorted(STATIC_BUILDERS))
def test_plan_round_trips(family):
    plan = compile_plan(family, 9, 1, "5/2")
    assert SchedulePlan.from_bytes(plan.to_bytes()) == plan
    assert (
        SchedulePlan.from_schedule(plan.to_schedule(), family=family) == plan
    )


@pytest.mark.parametrize("family", sorted(STATIC_BUILDERS))
@pytest.mark.parametrize("lam_str", ["1", "5/2"])
def test_plan_replay_realizes_planned_events(family, lam_str):
    plan = compile_plan(family, 8, 1, lam_str)
    system = plan.replay()
    realized = system.realized_schedule(m=plan.m, validate=False)
    assert realized.events == plan.to_schedule().events


# ------------------------------------------------------------ plan_m


def test_plan_m_canonicalizes_collectives():
    assert plan_m("GATHER", 10, 1) == 9
    assert plan_m("GATHER", 10, 9) == 9
    assert plan_m("ALLGATHER", 10, 1) == 10
    assert plan_m("ALLREDUCE", 10, 1) == 1
    assert plan_m("gossip-ring", 1, 1) == 1
    # broadcast families pass m through untouched
    assert plan_m("BCAST", 10, 1) == 1
    assert plan_m("REPEAT", 10, 7) == 7


def test_plan_m_rejects_other_message_counts():
    with pytest.raises(InvalidParameterError):
        plan_m("GATHER", 10, 5)
    with pytest.raises(InvalidParameterError):
        compile_plan("SCATTER", 10, 3, "2")


# ------------------------------------------------------------- caching


def test_collective_plans_hit_the_memory_cache():
    cache = PlanCache(mode="mem")
    first = build_plan("BRUCK-ALLGATHER", 9, 1, "5/2", cache=cache)
    again = build_plan("BRUCK-ALLGATHER", 9, 1, "5/2", cache=cache)
    assert again is first
    assert cache.hits == 1 and cache.misses == 1


def test_cache_key_collapses_m_aliases():
    """A collective requested at ``m = 1`` and at its plan message count
    share one entry: the stored plan carries ``m_eff``, and ``plan_m``
    folds both requests onto it."""
    cache = PlanCache(mode="mem")
    first = build_plan("GATHER", 10, 1, "2", cache=cache)
    assert first.m == 9
    again = build_plan("GATHER", 10, 9, "2", cache=cache)
    assert again is first
    assert cache.hits == 1 and cache.misses == 1
    assert PlanCache.key("GATHER", 10, 1, "2") == PlanCache.key(
        "GATHER", 10, 9, "2"
    )


def test_collective_plans_round_trip_through_disk_cache(tmp_path):
    cache = PlanCache(mode="disk", directory=tmp_path)
    first = build_plan("ALLGATHER", 9, 1, "5/2", cache=cache)
    fresh = PlanCache(mode="disk", directory=tmp_path)
    again = build_plan("ALLGATHER", 9, 1, "5/2", cache=fresh)
    assert again == first
    assert fresh.disk_hits == 1


# ------------------------------------------------------------- auditing


@pytest.mark.parametrize("family", sorted(STATIC_BUILDERS))
def test_audit_ports_passes_for_every_collective_plan(family):
    for lam_str in LAMBDAS:
        compile_plan(family, 12, 1, lam_str).audit_ports()


@pytest.mark.parametrize("family", ["GATHER", "ALLREDUCE", "GOSSIP-RING"])
def test_broadcast_audit_rejects_collective_plans(family):
    """Collective message flow is not single-root broadcast: rumors
    originate at non-root processors (a causality violation under
    broadcast rules) or deliveries repeat — the full audit must say so."""
    plan = compile_plan(family, 8, 1, "2")
    with pytest.raises(ScheduleError):
        plan.audit()


def test_audit_ports_catches_port_collisions():
    domain = TickDomain(1)
    plan = SchedulePlan(
        "GATHER",
        3,
        2,
        as_time(1),
        domain,
        array("q", [0, 0]),
        array("q", [1, 1]),  # p1 drives two sends at tick 0
        array("q", [0, 1]),
        array("q", [0, 2]),
    )
    with pytest.raises(SimultaneousIOError):
        plan.audit_ports()


def test_audit_ports_catches_unsorted_columns():
    domain = TickDomain(1)
    plan = SchedulePlan(
        "GATHER",
        3,
        2,
        as_time(1),
        domain,
        array("q", [5, 0]),
        array("q", [1, 2]),
        array("q", [0, 1]),
        array("q", [0, 0]),
    )
    with pytest.raises(ScheduleError):
        plan.audit_ports()
