"""Tests for REPEAT, PACK, and PIPELINE (Section 4.2, Lemmas 10-17)."""

from fractions import Fraction

import pytest

from repro.core.analysis import (
    multi_lower_bound,
    pack_time,
    pack_upper,
    pipeline_time,
    pipeline_upper,
    repeat_time,
    repeat_upper,
)
from repro.core.multi import (
    pack_schedule,
    pipeline_schedule,
    pipeline_variant,
    repeat_schedule,
)
from repro.core.orderpres import is_order_preserving
from repro.errors import InvalidParameterError

from tests.grids import LAMBDAS, MCOUNTS

NS = [1, 2, 3, 5, 14, 27]


@pytest.mark.parametrize("lam", LAMBDAS, ids=str)
@pytest.mark.parametrize("n", NS)
@pytest.mark.parametrize("m", MCOUNTS)
class TestAgainstClosedForms:
    """Every builder's simulated completion time equals the paper's exact
    formula — with Fraction equality."""

    def test_repeat_lemma10(self, lam, n, m):
        s = repeat_schedule(n, m, lam)
        assert s.completion_time() == repeat_time(n, m, lam)

    def test_pack_lemma12(self, lam, n, m):
        s = pack_schedule(n, m, lam)
        assert s.completion_time() == pack_time(n, m, lam)

    def test_pipeline_lemmas14_16(self, lam, n, m):
        s = pipeline_schedule(n, m, lam)
        assert s.completion_time() == pipeline_time(n, m, lam)

    def test_all_order_preserving(self, lam, n, m):
        for s in (
            repeat_schedule(n, m, lam, validate=False),
            pack_schedule(n, m, lam, validate=False),
            pipeline_schedule(n, m, lam, validate=False),
        ):
            assert is_order_preserving(s)

    def test_lower_bound_lemma8(self, lam, n, m):
        lb = multi_lower_bound(n, m, lam)
        assert repeat_time(n, m, lam) >= lb
        assert pack_time(n, m, lam) >= lb
        assert pipeline_time(n, m, lam) >= lb


@pytest.mark.parametrize("lam", LAMBDAS, ids=str)
@pytest.mark.parametrize("m", MCOUNTS)
class TestUpperBoundCorollaries:
    def test_corollary11(self, lam, m):
        for n in (2, 14, 100):
            assert float(repeat_time(n, m, lam)) <= repeat_upper(n, m, lam) + 1e-9

    def test_corollary13(self, lam, m):
        for n in (2, 14, 100):
            assert float(pack_time(n, m, lam)) <= pack_upper(n, m, lam) + 1e-9

    def test_corollaries15_17(self, lam, m):
        for n in (2, 14, 100):
            assert (
                float(pipeline_time(n, m, lam))
                <= pipeline_upper(n, m, lam) + 1e-9
            )


class TestStructure:
    def test_m1_reduces_to_bcast(self, lam):
        from repro.core.bcast import bcast_schedule

        b = bcast_schedule(20, lam, validate=False)
        for build in (repeat_schedule, pack_schedule, pipeline_schedule):
            s = build(20, 1, lam, validate=False)
            assert s.completion_time() == b.completion_time(), build.__name__
        # PIPELINE with m=1 is structurally identical to BCAST
        p = pipeline_schedule(20, 1, lam, validate=False)
        assert set(p.events) == set(b.events)

    def test_pipeline_variant_names(self):
        assert pipeline_variant(2, 5) == "PIPELINE-1"
        assert pipeline_variant(5, 2) == "PIPELINE-2"
        assert pipeline_variant(3, 3) == "PIPELINE-1"  # boundary

    def test_pipeline_variants_agree_at_boundary(self):
        # at m == lambda the two formulas coincide
        for n in (2, 5, 14, 40):
            m = 3
            lam = Fraction(3)
            t1 = m * __import__("repro.core.fibfunc", fromlist=["postal_f"]).postal_f(lam / m, n) + (m - 1)
            t2 = lam * __import__("repro.core.fibfunc", fromlist=["postal_f"]).postal_f(Fraction(m) / lam, n) + (lam - 1)
            assert t1 == t2 == pipeline_time(n, m, lam)

    def test_repeat_iteration_spacing(self):
        """Root starts iteration i+1 exactly lambda-1 before iteration i
        completes (Lemma 10's overlap)."""
        from repro.core.fibfunc import postal_f

        n, m, lam = 14, 3, Fraction(5, 2)
        s = repeat_schedule(n, m, lam, validate=False)
        f = postal_f(lam, n)
        firsts = {}
        for e in s.events:
            if e.sender == 0:
                firsts.setdefault(e.msg, e.send_time)
        for i in range(m):
            assert firsts[i] == i * (f - (lam - 1))

    def test_pack_is_consecutive_bursts(self):
        """In PACK every sender transmits the m messages back to back to
        the same target."""
        s = pack_schedule(10, 4, Fraction(5, 2), validate=False)
        by_sender_target = {}
        for e in s.events:
            by_sender_target.setdefault((e.sender, e.receiver), []).append(e)
        for (_, _), evs in by_sender_target.items():
            evs.sort()
            assert [e.msg for e in evs] == list(range(4))
            times = [e.send_time for e in evs]
            assert all(b - a == 1 for a, b in zip(times, times[1:]))

    def test_pipeline_forwards_at_arrival(self):
        """In PIPELINE a recipient's k-th forwarded message departs exactly
        when message k arrives (for its first stream)."""
        n, m, lam = 14, 3, Fraction(2)
        s = pipeline_schedule(n, m, lam, validate=False)
        arrivals = s.arrivals()
        for proc in range(1, n):
            sends = s.sends_by(proc)
            if not sends:
                continue
            first_stream = sends[:m]
            for e in first_stream:
                assert e.send_time >= arrivals[(proc, e.msg)]
            # first message of the first stream departs exactly at arrival
            assert first_stream[0].send_time == arrivals[(proc, 0)]

    def test_bad_params(self):
        with pytest.raises(InvalidParameterError):
            repeat_schedule(0, 1, 2)
        with pytest.raises(InvalidParameterError):
            pack_schedule(2, 0, 2)
        with pytest.raises(InvalidParameterError):
            pipeline_schedule(2, 1, Fraction(1, 2))


class TestWhoWinsWhere:
    """Section 4.2's qualitative comparisons."""

    def test_pipeline_beats_repeat_for_many_messages(self):
        n, lam = 30, Fraction(5, 2)
        assert pipeline_time(n, 40, lam) < repeat_time(n, 40, lam)

    def test_pipeline_no_worse_than_pack(self):
        """PIPELINE exploits stream nonatomicity; PACK never beats it."""
        for lam in LAMBDAS:
            for n in (5, 14, 27):
                for m in (2, 5, 8, 20):
                    assert pipeline_time(n, m, lam) <= pack_time(n, m, lam)

    def test_repeat_linear_in_m(self):
        n, lam = 14, 2
        t1 = repeat_time(n, 1, lam)
        t10 = repeat_time(n, 10, lam)
        per_msg = (t10 - t1) / 9
        assert per_msg == t1 - (lam - 1)  # slope f - (lambda-1)

    def test_none_optimal_for_large_m(self):
        """For large m even PIPELINE is off the Lemma 8 lower bound by a
        nontrivial factor (the gap Section 5 discusses)."""
        n, lam, m = 64, 4, 500
        lb = multi_lower_bound(n, m, lam)
        assert pipeline_time(n, m, lam) > lb + 10
