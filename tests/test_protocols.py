"""Tests for the event-driven protocol implementations."""

from fractions import Fraction

import pytest

from repro.algorithms import (
    BcastProtocol,
    BinomialProtocol,
    DTreeProtocol,
    PackProtocol,
    PipelineProtocol,
    RepeatProtocol,
    StarProtocol,
)
from repro.core.analysis import pack_time, pipeline_time, repeat_time
from repro.core.fibfunc import postal_f
from repro.errors import InvalidParameterError
from repro.postal import run_protocol

from tests.grids import LAMBDAS

NS = [1, 2, 5, 14]
MS = [1, 2, 4]


class TestBcastProtocol:
    @pytest.mark.parametrize("lam", LAMBDAS, ids=str)
    @pytest.mark.parametrize("n", NS + [40])
    def test_completion_is_optimal(self, lam, n):
        res = run_protocol(BcastProtocol(n, lam))
        assert res.completion_time == postal_f(lam, n)

    def test_send_count(self):
        res = run_protocol(BcastProtocol(14, Fraction(5, 2)))
        assert res.sends == 13

    def test_figure1_run(self):
        res = run_protocol(BcastProtocol(14, Fraction(5, 2)))
        assert res.completion_time == Fraction(15, 2)
        # p9 is informed at 5/2 (paper Figure 1)
        assert res.schedule.arrival_of(9) == Fraction(5, 2)


@pytest.mark.parametrize("lam", LAMBDAS[:5], ids=str)
@pytest.mark.parametrize("n", NS)
@pytest.mark.parametrize("m", MS)
class TestMultiProtocols:
    def test_repeat(self, lam, n, m):
        res = run_protocol(RepeatProtocol(n, m, lam))
        assert res.completion_time == repeat_time(n, m, lam)

    def test_pack(self, lam, n, m):
        res = run_protocol(PackProtocol(n, m, lam))
        assert res.completion_time == pack_time(n, m, lam)

    def test_pipeline(self, lam, n, m):
        res = run_protocol(PipelineProtocol(n, m, lam))
        assert res.completion_time == pipeline_time(n, m, lam)


class TestGreedyRepeat:
    @pytest.mark.parametrize("lam", LAMBDAS[:5], ids=str)
    def test_greedy_never_slower(self, lam):
        for n in (2, 5, 14):
            for m in (2, 4):
                greedy = run_protocol(RepeatProtocol(n, m, lam, greedy=True))
                assert greedy.completion_time <= repeat_time(n, m, lam)

    def test_greedy_strictly_faster_somewhere(self):
        """The sharpening is real: at (n=5, lam=5/2) the root's last send
        ends before f - lambda, so greedy beats Lemma 10."""
        n, m, lam = 5, 2, Fraction(5, 2)
        greedy = run_protocol(RepeatProtocol(n, m, lam, greedy=True))
        assert greedy.completion_time < repeat_time(n, m, lam)


class TestDTreeProtocol:
    @pytest.mark.parametrize("d", [1, 2, 3])
    def test_matches_builder(self, d):
        from repro.core.dtree import dtree_schedule

        n, m, lam = 14, 3, Fraction(5, 2)
        res = run_protocol(DTreeProtocol(n, m, lam, d))
        assert res.schedule == dtree_schedule(n, m, lam, d)

    def test_shape_presets(self):
        from repro.core.dtree import DTreeShape

        res = run_protocol(DTreeProtocol(10, 2, 2, DTreeShape.BINARY))
        assert res.schedule is not None


class TestBaselines:
    def test_star_time(self):
        res = run_protocol(StarProtocol(10, 2, Fraction(5, 2)))
        # root sends 2*(10-1) messages back to back; last arrives at
        # 18 - 1 + 5/2
        assert res.completion_time == 17 + Fraction(5, 2)

    def test_binomial_optimal_at_lambda1(self):
        res = run_protocol(BinomialProtocol(16, 1))
        assert res.completion_time == postal_f(1, 16)

    def test_binomial_loses_at_higher_lambda(self):
        lam = Fraction(5, 2)
        res = run_protocol(BinomialProtocol(14, lam))
        assert res.completion_time > postal_f(lam, 14)

    def test_binomial_matches_builder(self):
        from repro.algorithms.baselines import binomial_schedule

        lam = Fraction(5, 2)
        res = run_protocol(BinomialProtocol(14, lam))
        assert res.schedule == binomial_schedule(14, lam)


class TestProtocolAPI:
    def test_bad_params(self):
        with pytest.raises(InvalidParameterError):
            BcastProtocol(0, 2)
        with pytest.raises(InvalidParameterError):
            RepeatProtocol(2, 0, 2)
        with pytest.raises(InvalidParameterError):
            PipelineProtocol(2, 1, Fraction(1, 2))

    def test_repr(self):
        assert "n=5" in repr(BcastProtocol(5, 2))

    def test_variant_names(self):
        assert PipelineProtocol(5, 2, 4).variant == "PIPELINE-1"
        assert PipelineProtocol(5, 7, 4).variant == "PIPELINE-2"
