"""Offline markdown link checker for docs/*.md and README.md.

Every relative link target must exist on disk (anchors are stripped;
directory targets must be directories), and every absolute URL must at
least be well-formed.  No network access — CI stays hermetic — so
external URLs are syntax-checked only.
"""

import pathlib
import re
import urllib.parse

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent
PAGES = sorted(ROOT.glob("docs/*.md")) + [ROOT / "README.md"]

# [text](target) / ![alt](target), tolerating one level of nested
# brackets in the text and an optional "title" after the target.
_LINK = re.compile(r"!?\[(?:[^\[\]]|\[[^\]]*\])*\]\(\s*<?([^)<>\s]+)>?(?:\s+\"[^\"]*\")?\s*\)")
_FENCE = re.compile(r"^(```|~~~)")


def _links(text):
    """Yield (lineno, target) for markdown links outside code fences."""
    in_fence = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        if _FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in _LINK.finditer(line):
            yield lineno, match.group(1)


def test_pages_are_collected():
    names = {p.name for p in PAGES}
    assert "README.md" in names and "collectives.md" in names
    assert len(PAGES) >= 9


@pytest.mark.parametrize("page", PAGES, ids=lambda p: str(p.relative_to(ROOT)))
def test_markdown_links_resolve(page):
    text = page.read_text()
    problems = []
    for lineno, target in _links(text):
        where = f"{page.relative_to(ROOT)}:{lineno}"
        parsed = urllib.parse.urlparse(target)
        if parsed.scheme in ("http", "https"):
            if not parsed.netloc:
                problems.append(f"{where}: malformed URL {target!r}")
            continue
        if parsed.scheme in ("mailto",):
            continue
        if parsed.scheme:
            problems.append(f"{where}: unsupported scheme in {target!r}")
            continue
        path = urllib.parse.unquote(parsed.path)
        if not path:  # pure in-page anchor like (#section)
            continue
        base = ROOT if path.startswith("/") else page.parent
        resolved = (base / path.lstrip("/")).resolve()
        if ROOT not in resolved.parents and resolved != ROOT:
            problems.append(f"{where}: {target!r} escapes the repository")
        elif not resolved.exists():
            problems.append(f"{where}: {target!r} does not exist")
    assert not problems, "\n".join(problems)
