"""Byte-identity of the batch sweep engine across every execution mode.

:func:`repro.batch.run_batch` promises that its result stream is
*identical* — field for field, digest for digest — no matter how the
sweep executes.  This suite pins that promise differentially over every
plan-compiled family (broadcast and collective) under both contention
policies, one comparison per axis:

* **fallback** — ``REPRO_NUMPY=off`` forces the pure-Python replay
  passes; results must match the NumPy kernels exactly (the kernel
  contract is byte-identity, not approximate agreement).
* **shared** — ``jobs=4`` with zero-copy shared-memory plan
  distribution must match the serial in-process sweep.
* **pickle** — ``jobs=4`` with pickled plan blobs must match too, so
  the transport is an implementation detail, never an observable.

The serial reference itself is also pinned against a direct
:func:`~repro.turbo.replay.replay_plan` execution, closing the loop to
the already-pinned replay tier (``tests/test_replay_equivalence.py``).
"""

import os
import warnings
from contextlib import contextmanager

import pytest

from repro.batch import run_batch
from repro.batch.runner import BatchPoint
from repro.errors import InvalidParameterError
from repro.plan import build_plan, plan_families
from repro.plan.build import collective_plan_families

#: One applicable-by-construction grid point per family (PIPELINE-1
#: needs ``m <= floor(lam)``, PIPELINE-2 ``m >= ceil(lam)``, the
#: single-message families pin ``m = 1``).  Rational lambdas on the
#: pipelines exercise the tick-domain scaling.
CONFIGS = {
    "BCAST": (12, 1, "2"),
    "BINOMIAL": (12, 1, "2"),
    "DTREE-BINARY": (12, 1, "2"),
    "DTREE-LATENCY": (12, 1, "2"),
    "DTREE-LINE": (12, 1, "2"),
    "PACK": (10, 3, "2"),
    "PIPELINE-1": (10, 2, "5/2"),
    "PIPELINE-2": (10, 3, "5/2"),
    "REPEAT": (10, 3, "2"),
    "STAR": (12, 1, "2"),
    "ALLGATHER": (8, 1, "2"),
    "ALLREDUCE": (8, 1, "2"),
    "ALLTOALL": (8, 1, "2"),
    "BARRIER": (8, 1, "2"),
    "BRUCK-ALLGATHER": (8, 1, "2"),
    "GATHER": (8, 1, "2"),
    "GOSSIP-RING": (8, 1, "2"),
    "REDUCE": (8, 1, "2"),
    "SCATTER": (8, 1, "2"),
}

FAMILIES = sorted(CONFIGS)
POLICIES = ("strict", "queued")

POINTS = [
    BatchPoint(family, *CONFIGS[family], policy=policy)
    for family in FAMILIES
    for policy in POLICIES
]


def test_config_table_covers_every_plan_family():
    """The suite must grow with the registry: a newly plan-compiled
    family without a CONFIGS row fails here, not silently."""
    registered = set(plan_families()) | set(collective_plan_families())
    assert registered == set(CONFIGS)


def _by_key(results):
    table = {(r.family, r.policy): r for r in results}
    assert len(table) == len(results)  # no duplicate grid points
    return table


@contextmanager
def _quiet_oversubscription():
    """``jobs=4`` legitimately exceeds small CI runners' CPU counts; the
    once-per-process warning is the tested behavior of
    ``tests/test_bench_sections.py``, noise here."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        yield


@pytest.fixture(scope="session")
def serial_results():
    """The reference: in-process, one worker, default transport."""
    return _by_key(run_batch(POINTS, jobs=1))


@pytest.fixture(scope="session")
def fallback_results():
    """Pure-Python replay passes (``REPRO_NUMPY=off``)."""
    saved = os.environ.get("REPRO_NUMPY")
    os.environ["REPRO_NUMPY"] = "off"
    try:
        return _by_key(run_batch(POINTS, jobs=1))
    finally:
        if saved is None:
            os.environ.pop("REPRO_NUMPY", None)
        else:
            os.environ["REPRO_NUMPY"] = saved


@pytest.fixture(scope="session")
def shared_results():
    """Four workers mapping plans from shared memory."""
    with _quiet_oversubscription():
        return _by_key(run_batch(POINTS, jobs=4, transport="shared"))


@pytest.fixture(scope="session")
def pickle_results():
    """Four workers receiving pickled plan blobs."""
    with _quiet_oversubscription():
        return _by_key(run_batch(POINTS, jobs=4, transport="pickle"))


@pytest.mark.parametrize("policy", POLICIES)
@pytest.mark.parametrize("family", FAMILIES)
class TestByteIdentity:
    def test_numpy_vs_fallback(self, serial_results, fallback_results, family, policy):
        assert serial_results[family, policy] == fallback_results[family, policy]

    def test_serial_vs_shared_jobs4(self, serial_results, shared_results, family, policy):
        assert serial_results[family, policy] == shared_results[family, policy]

    def test_serial_vs_pickle_jobs4(self, serial_results, pickle_results, family, policy):
        assert serial_results[family, policy] == pickle_results[family, policy]


@pytest.mark.parametrize("family", FAMILIES)
def test_serial_matches_direct_replay(serial_results, family):
    """Close the loop: run_batch's digest/completion are exactly what a
    direct replay of the same plan produces."""
    from repro.postal.machine import ContentionPolicy
    from repro.turbo.replay import replay_plan
    from repro.types import time_repr

    n, m, lam = CONFIGS[family]
    plan = build_plan(family, n, m, lam)
    system = replay_plan(plan, policy=ContentionPolicy.STRICT)
    got = serial_results[family, "strict"]
    assert got.completion == time_repr(system.completion_time)
    assert got.digest == system.column_digest()
    assert got.sends == len(plan)


def test_results_stream_in_submission_order():
    pts = [BatchPoint("BCAST", n, 1, "2") for n in (9, 3, 17, 5)]
    got = run_batch(pts, jobs=1)
    assert [r.n for r in got] == [9, 3, 17, 5]


def test_jobs_beyond_point_count_is_exact(serial_results):
    with _quiet_oversubscription():
        got = _by_key(run_batch(POINTS[:3] + POINTS[-3:], jobs=16))
    for key, result in got.items():
        assert result == serial_results[key]


def test_rejects_unknown_backend():
    with pytest.raises(InvalidParameterError, match="backend"):
        run_batch([BatchPoint("BCAST", 4)], backend="exact")


def test_rejects_unknown_transport():
    with pytest.raises(InvalidParameterError, match="transport"):
        run_batch([BatchPoint("BCAST", 4)], jobs=2, transport="carrier-pigeon")


def test_point_rejects_unknown_policy():
    with pytest.raises(InvalidParameterError, match="policy"):
        BatchPoint("BCAST", 4, policy="lax")


def test_empty_batch_is_empty():
    with _quiet_oversubscription():
        assert run_batch([], jobs=4) == []
