"""Determinism regression suite: every fault-injected turbo scenario,
run twice with the same seed, must be byte-identical — traces, metrics,
result rows, and sharded sweeps alike; different seeds must differ.

The digest a :class:`~repro.resilience.runner.ResilienceResult` carries
is a SHA-256 over the fully materialized trace (send/deliver/consume/
drop records with retransmit tags and drop reasons) plus the folded
:class:`~repro.obs.metrics.RunMetrics` — so "results equal" below means
the runs agree event for event, not merely on summary counters.
"""

import pytest

from repro.obs.metrics import MetricsCollector
from repro.resilience import degradation_curve, run_resilient, trace_digest
from repro.bench import RESILIENCE_CASES, bench_resilience

pytestmark = pytest.mark.resilience

#: Every fault-injected scenario shape the subsystem supports: loss
#: only, crash only (both detectors), jitter only, and all at once.
SCENARIOS = [
    pytest.param(dict(n=30, lam=2, loss=0.25), id="loss"),
    pytest.param(dict(n=30, lam=2, crash=0.2), id="crash-timeout"),
    pytest.param(
        dict(n=30, lam=2, crash=0.2, detector="perfect"), id="crash-perfect"
    ),
    pytest.param(dict(n=30, lam="5/2", jitter="3/2"), id="jitter"),
    pytest.param(
        dict(n=24, lam="7/3", m=3, loss=0.15, crash=0.15, jitter="1/3"),
        id="everything",
    ),
]


class TestSameSeedByteIdentical:
    @pytest.mark.parametrize("kwargs", SCENARIOS)
    def test_results_and_digests_equal(self, kwargs):
        a = run_resilient(seed=13, **kwargs)
        b = run_resilient(seed=13, **kwargs)
        assert a == b  # every field, digest included
        assert a.digest == b.digest

    @pytest.mark.parametrize("kwargs", SCENARIOS)
    def test_traces_byte_identical(self, kwargs):
        def records(seed):
            keep = []
            run_resilient(seed=13, keep=keep, **kwargs)
            system, _, _ = keep[0]
            return [
                (str(r.time), r.kind, repr(r.data))
                for r in system.flush_trace()
            ]

        assert records(13) == records(13)

    @pytest.mark.parametrize("kwargs", SCENARIOS)
    def test_metrics_identical(self, kwargs):
        def metrics(seed):
            keep = []
            run_resilient(seed=seed, keep=keep, **kwargs)
            system, _, _ = keep[0]
            collector = MetricsCollector()
            collector.attach(system.flush_trace())
            folded = collector.finalize(n=system.n, lam=system.lam)
            collector.detach()
            return folded.to_dict()

        assert metrics(13) == metrics(13)


class TestDifferentSeedsDiffer:
    @pytest.mark.parametrize("kwargs", SCENARIOS)
    def test_some_nearby_seed_differs(self, kwargs):
        base = run_resilient(seed=13, **kwargs)
        assert any(
            run_resilient(seed=s, **kwargs).digest != base.digest
            for s in (14, 15, 16)
        ), "three different seeds all replayed the base run exactly"


class TestShardedSweepDeterminism:
    def test_jobs_1_equals_jobs_4(self):
        kwargs = dict(
            loss_rates=(0.0, 0.1, 0.3),
            crash_rates=(0.0, 0.2),
            seed=5,
            max_retries=4,
        )
        serial = degradation_curve(20, 2, jobs=1, **kwargs)
        sharded = degradation_curve(20, 2, jobs=4, **kwargs)
        assert serial == sharded  # row for row, digests included

    def test_point_seeds_are_position_independent(self):
        # the same (loss, crash) point replays identically in any grid
        wide = degradation_curve(
            14, 2, loss_rates=(0.0, 0.1, 0.3), crash_rates=(0.0,), seed=9
        )
        narrow = degradation_curve(
            14, 2, loss_rates=(0.3,), crash_rates=(0.0,), seed=9
        )
        assert wide[2] == narrow[0]


class TestBenchSection:
    def test_bench_rows_identical_across_invocations(self):
        def rows():
            section = bench_resilience(n=120)
            return [
                {k: v for k, v in row.items() if k != "wall_s"}
                for row in section["cases"]
            ]

        assert rows() == rows()

    def test_bench_gate_passes_and_covers_cases(self):
        section = bench_resilience(n=120)
        assert section["gate"]["ok"]
        assert section["gate"]["deterministic"]
        assert section["gate"]["certified"]
        assert section["gate"]["within_depth"]
        assert len(section["cases"]) == len(RESILIENCE_CASES)

    def test_digest_helper_is_idempotent(self):
        keep = []
        run_resilient(15, 2, loss=0.2, seed=1, keep=keep)
        system, _, _ = keep[0]
        assert trace_digest(system) == trace_digest(system)
