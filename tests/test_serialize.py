"""Tests for JSON serialization of schedules and trees."""

import json
from fractions import Fraction

import pytest

from repro.core.bcast import bcast_schedule, bcast_tree
from repro.core.multi import pipeline_schedule
from repro.core.schedule import Schedule
from repro.core.serialize import (
    dumps_schedule,
    loads_schedule,
    schedule_from_dict,
    schedule_to_dict,
    tree_to_dict,
)
from repro.errors import ScheduleError

from tests.grids import LAMBDAS


class TestRoundTrip:
    @pytest.mark.parametrize("lam", LAMBDAS, ids=str)
    def test_bcast_roundtrip_exact(self, lam):
        original = bcast_schedule(20, lam)
        restored = loads_schedule(dumps_schedule(original))
        assert restored == original
        assert restored.completion_time() == original.completion_time()

    def test_multimessage_roundtrip(self):
        original = pipeline_schedule(9, 4, Fraction(7, 3))
        restored = loads_schedule(dumps_schedule(original))
        assert restored == original
        assert restored.m == 4

    def test_fraction_times_survive(self):
        original = bcast_schedule(14, "5/2")
        data = schedule_to_dict(original)
        assert data["lambda"] == "2.5"
        restored = schedule_from_dict(data)
        assert restored.lam == Fraction(5, 2)
        assert restored.completion_time() == Fraction(15, 2)

    def test_json_is_plain(self):
        text = dumps_schedule(bcast_schedule(5, 2))
        parsed = json.loads(text)
        assert parsed["format"] == "repro.schedule.v1"
        assert isinstance(parsed["events"], list)


class TestValidationOnLoad:
    def test_tampered_schedule_rejected(self):
        data = schedule_to_dict(bcast_schedule(5, 2))
        # move a non-root send before its sender is informed
        for i, (t, src, msg, dst) in enumerate(data["events"]):
            if src != 0:
                data["events"][i] = ["0", src, msg, dst]
                break
        with pytest.raises(ScheduleError):
            schedule_from_dict(data)

    def test_tampered_accepted_unvalidated(self):
        data = schedule_to_dict(bcast_schedule(5, 2))
        for i, (t, src, msg, dst) in enumerate(data["events"]):
            if src != 0:
                data["events"][i] = ["0", src, msg, dst]
                break
        sched = schedule_from_dict(data, validate=False)
        assert isinstance(sched, Schedule)

    def test_wrong_format_tag(self):
        with pytest.raises(ScheduleError):
            schedule_from_dict({"format": "something.else"})

    def test_not_a_dict(self):
        with pytest.raises(ScheduleError):
            schedule_from_dict([1, 2, 3])  # type: ignore[arg-type]

    def test_malformed_events(self):
        with pytest.raises(ScheduleError):
            schedule_from_dict(
                {
                    "format": "repro.schedule.v1",
                    "n": 2,
                    "m": 1,
                    "lambda": "2",
                    "events": [["zero", 0, 0]],  # wrong arity + bad time
                }
            )

    def test_invalid_json(self):
        with pytest.raises(ScheduleError):
            loads_schedule("{not json")


class TestTreeExport:
    def test_tree_dict_shape(self):
        tree = bcast_tree(14, Fraction(5, 2))
        data = tree_to_dict(tree)
        assert data["format"] == "repro.tree.v1"
        assert data["root"] == 0
        assert len(data["nodes"]) == 14
        assert data["nodes"]["9"]["informed_at"] == "2.5"
        assert data["nodes"]["9"]["parent"] == 0
        assert data["nodes"]["0"]["children"][0] == 9

    def test_tree_dict_json_serializable(self):
        text = json.dumps(tree_to_dict(bcast_tree(8, 2)))
        assert json.loads(text)["root"] == 0
