"""Differential equivalence for the vectorized replay tier.

Two layers, matching the two promises of :mod:`repro.turbo.replay`:

* **plan level** — :func:`replay_plan` must be *byte-identical* to
  executing the same compiled :class:`~repro.plan.columns.SchedulePlan`
  through ``SchedulePlan.replay()`` on the turbo event loop: same trace
  record sequence, realized schedule, completion time, send count, and
  port busy intervals, and the same exception text at the same first
  strict collision.
* **protocol level** — ``run_protocol(..., backend="replay")`` must
  agree with the ``exact`` and ``turbo`` lanes on everything the
  machine observes: completion, send count, and realized schedule,
  for every registered family over the grid, raising the same
  exception type where the model itself raises.

Plus unit tests for the calendar-queue scheduler (overflow, rebase,
sparse fallback to heap mode), the columnar :class:`RunLog`, and the
tick-domain boundaries at ``MAX_SCALE``.
"""

from array import array
from fractions import Fraction

import pytest

from repro.conformance.oracles import families, get_oracle
from repro.errors import (
    InvalidParameterError,
    SimultaneousIOError,
    TickDomainError,
)
from repro.plan import compile_plan, plan_families, plan_m
from repro.postal.machine import ContentionPolicy
from repro.postal.message import Message
from repro.postal.runner import run_protocol
from repro.turbo import ReplaySystem, TickDomain, replay_plan
from repro.turbo.fastsim import TurboEnvironment
from repro.turbo.runlog import (
    CONSUME,
    DELIVER,
    DROP_LOSS,
    SEND,
    SEND_RETRANSMIT,
    RunLog,
)
from repro.turbo.ticks import MAX_SCALE
from repro.types import as_time

LAMBDAS = ["1", "3/2", "2", "5/2", "7/3", "4"]
SIZES = [2, 3, 5, 8, 13]
MCOUNTS = [1, 2, 3]


def _trace_tuples(system):
    """The flushed trace as a comparable sequence (order matters)."""
    out = []
    for rec in system.flush_trace().records():
        data = rec.data
        if isinstance(data, Message):
            data = (
                "msg",
                data.msg,
                data.src,
                data.dst,
                data.sent_at,
                data.arrived_at,
                data.payload,
            )
        elif isinstance(data, dict):
            data = tuple(sorted(data.items()))
        out.append((rec.time, rec.kind, data))
    return out


def _ports(system, n):
    return (
        [system.send_port(p).busy_intervals for p in range(n)],
        [system.recv_port(p).busy_intervals for p in range(n)],
    )


# ------------------------------------------------- plan-level identity


@pytest.mark.parametrize("lam_str", LAMBDAS)
@pytest.mark.parametrize("family", plan_families())
def test_replay_matches_event_loop_plan_replay(family, lam_str):
    """replay_plan(plan) is byte-identical to plan.replay() on turbo."""
    lam = as_time(lam_str)
    checked = 0
    for n in SIZES:
        for m in MCOUNTS:
            try:
                plan = compile_plan(family, n, plan_m(family, n, m), lam)
            except InvalidParameterError:
                continue
            for policy_name, policy in (
                ("strict", ContentionPolicy.STRICT),
                ("queued", ContentionPolicy.QUEUED),
            ):
                ctx = f"{family} n={n} m={m} lam={lam_str} {policy_name}"
                loop_sys = plan.replay(policy=policy_name)
                fast_sys = replay_plan(plan, policy=policy)
                assert isinstance(fast_sys, ReplaySystem)
                assert fast_sys.send_count == loop_sys.send_count, ctx
                assert (
                    fast_sys.completion_time == loop_sys.completion_time
                ), ctx
                assert _trace_tuples(fast_sys) == _trace_tuples(
                    loop_sys
                ), f"{ctx}: trace records differ"
                assert _ports(fast_sys, n) == _ports(
                    loop_sys, n
                ), f"{ctx}: port busy intervals differ"
                if policy is ContentionPolicy.STRICT:
                    a = loop_sys.realized_schedule(m=plan.m, validate=False)
                    b = fast_sys.realized_schedule(m=plan.m, validate=False)
                    assert a.events == b.events, f"{ctx}: schedules differ"
                checked += 1
    if checked == 0:
        pytest.skip(f"no applicable (n, m) for {family} at lambda={lam_str}")


# -------------------------------------------- protocol-level identity


@pytest.mark.parametrize("lam_str", LAMBDAS)
@pytest.mark.parametrize("family", families())
def test_replay_backend_matches_protocol_runs(family, lam_str):
    """backend="replay" agrees with backend="turbo" on the machine-level
    outcome of every registered family (the turbo-vs-exact suite already
    pins turbo to the exact engine)."""
    oracle = get_oracle(family)
    lam = as_time(lam_str)
    checked = 0
    for n in SIZES:
        for m in MCOUNTS:
            if not oracle.applicable(n, m, lam):
                continue
            policies = [ContentionPolicy.STRICT]
            if oracle.supports_queued:
                policies.append(ContentionPolicy.QUEUED)
            for policy in policies:
                ctx = f"{family} n={n} m={m} lam={lam_str} {policy.value}"
                try:
                    turbo = run_protocol(
                        oracle.protocol(n=n, m=m, lam=lam),
                        policy=policy,
                        backend="turbo",
                    )
                except Exception as exc:
                    with pytest.raises(type(exc)):
                        run_protocol(
                            oracle.protocol(n=n, m=m, lam=lam),
                            policy=policy,
                            backend="replay",
                        )
                    checked += 1
                    continue
                replay = run_protocol(
                    oracle.protocol(n=n, m=m, lam=lam),
                    policy=policy,
                    backend="replay",
                )
                assert (
                    replay.completion_time == turbo.completion_time
                ), f"{ctx}: completion differs"
                assert replay.sends == turbo.sends, f"{ctx}: sends differ"
                if turbo.schedule is not None:
                    assert replay.schedule is not None, ctx
                    assert (
                        replay.schedule.events == turbo.schedule.events
                    ), f"{ctx}: schedules differ"
                checked += 1
    if checked == 0:
        pytest.skip(f"no applicable (n, m) for {family} at lambda={lam_str}")


def test_replay_refuses_protocols_without_a_plan():
    """A protocol with no registered plan family cannot replay."""

    class _Anon:
        n = 3
        m = 1
        root = 0
        lam = as_time(2)

        def program(self, proc, system):
            return None

    with pytest.raises(InvalidParameterError, match="no family name"):
        run_protocol(_Anon(), backend="replay")


def test_replay_refuses_engine_profiling():
    proto = get_oracle("BCAST").protocol(n=4, m=1, lam=as_time(2))
    with pytest.raises(InvalidParameterError, match="profil"):
        run_protocol(proto, backend="replay", profile=True)


# --------------------------------------------------- exception parity


def _colliding_plan():
    """Two senders hit p2's receive port in the same window."""
    from repro.plan.columns import SchedulePlan

    domain = TickDomain(1)
    return SchedulePlan(
        "BCAST",
        3,
        1,
        as_time(2),
        domain,
        array("q", [0, 0]),
        array("q", [0, 1]),
        array("q", [0, 0]),
        array("q", [2, 2]),
    )


def test_strict_collision_raises_identical_message():
    plan = _colliding_plan()
    with pytest.raises(SimultaneousIOError) as loop_exc:
        plan.replay(policy="strict")
    with pytest.raises(SimultaneousIOError) as fast_exc:
        replay_plan(plan, policy=ContentionPolicy.STRICT)
    assert str(fast_exc.value) == str(loop_exc.value)


def test_queued_collision_serializes_and_flags_contention():
    plan = _colliding_plan()
    loop_sys = plan.replay(policy="queued")
    fast_sys = replay_plan(plan, policy=ContentionPolicy.QUEUED)
    assert fast_sys.queued_contention is True
    assert fast_sys.completion_time == loop_sys.completion_time
    assert _trace_tuples(fast_sys) == _trace_tuples(loop_sys)


def test_contention_free_plan_does_not_flag():
    plan = compile_plan("BCAST", 13, 1, as_time("5/2"))
    assert (
        replay_plan(plan, policy=ContentionPolicy.QUEUED).queued_contention
        is False
    )


# ---------------------------------------------------- calendar queue


def _run_env(pushes):
    """Push ``(tick, label)`` events into a bare environment; return the
    labels in execution order."""
    env = TurboEnvironment(TickDomain(1))
    seen = []
    for tick, label in pushes:
        env._push(tick, seen.append, label)
    env.run()
    return env, seen


def test_calendar_far_future_overflow_preserves_order():
    """Pushes beyond the calendar span go to the overflow heap but still
    execute in (tick, push-order) sequence."""
    far = 1 << 20  # far beyond the 2**16 look-ahead span
    env, seen = _run_env(
        [(far, "c"), (0, "a"), (far + 1, "d"), (1, "b"), (far, "c2")]
    )
    assert seen == ["a", "b", "c", "c2", "d"]


def test_calendar_rebase_on_drain():
    """A drained calendar rebases onto the overflow's next tick instead
    of scanning the gap bucket by bucket."""
    gap = 1 << 18
    env, seen = _run_env([(0, "a"), (gap, "b"), (3 * gap, "c")])
    assert seen == ["a", "b", "c"]
    assert not env._heap_mode  # rebasing handled the gaps, no fallback


def test_calendar_sparse_spread_falls_back_to_heap():
    """Widely spaced occupied ticks inside the span accrue scan debt and
    flip the scheduler into classic heap mode, with order preserved."""
    spacing = 4096  # sparse but within the 2**16 look-ahead span
    pushes = [(i * spacing, f"e{i}") for i in range(12)]
    env, seen = _run_env(pushes)
    assert seen == [f"e{i}" for i in range(12)]
    assert env._heap_mode


def test_calendar_same_tick_fifo_with_live_appends():
    """Callbacks scheduled *for the current tick* during the current tick
    run within that tick, in append order."""
    env = TurboEnvironment(TickDomain(1))
    seen = []

    def first():
        seen.append("first")
        env._push(0, seen.append, "nested")

    env._push(0, first)
    env._push(0, seen.append, "second")
    env.run()
    assert seen == ["first", "second", "nested"]
    assert env.now == env.domain.to_time(0)


def test_calendar_rejects_past_events():
    from repro.errors import SimulationError

    env = TurboEnvironment(TickDomain(1))
    env._push(5, lambda: None)
    env.run()
    with pytest.raises(SimulationError):
        env._push(1, lambda: None)


# ---------------------------------------------------------- run log


def test_runlog_columns_and_counts():
    log = RunLog()
    log.append(SEND, 10, 0, 1, 7)
    log.append(DELIVER, 12, 0, 1)
    log.append(SEND_RETRANSMIT, 11, 0, 1, 7)
    log.append(DROP_LOSS, 13, 0, 1, 7)
    log.append(CONSUME, 14, 0, 1)
    assert len(log) == 5
    assert log.send_count == 2  # SEND + SEND_RETRANSMIT
    assert log.count(SEND) == 1
    assert log.count(SEND, SEND_RETRANSMIT) == 2
    assert list(log.rows())[0] == (SEND, 10, 0, 1, 7)
    assert log.nbytes > 0


def test_runlog_order_by_tick_is_stable():
    log = RunLog()
    log.append(SEND, 5, 0)
    log.append(SEND, 3, 1)
    log.append(DELIVER, 5, 2)
    log.append(SEND, 3, 3)
    order = log.order_by_tick()
    # ticks sort ascending; equal ticks keep append order (stable)
    assert [log.a[i] for i in order] == [1, 3, 0, 2]


# ------------------------------------------------ tick-domain bounds


def test_tick_domain_accepts_exactly_max_scale():
    domain = TickDomain(MAX_SCALE)
    one = Fraction(1, MAX_SCALE)
    assert domain.to_time(domain.to_ticks(one)) == one


def test_tick_domain_rejects_one_over_max_scale():
    with pytest.raises(TickDomainError):
        TickDomain(MAX_SCALE + 1)


def test_for_values_rejects_mixed_denominator_lcm_overflow():
    """Each denominator fits, but their LCM overflows the grid — the
    domain must refuse loudly instead of silently rounding."""
    values = [Fraction(1, 3), Fraction(1, 1 << 23)]  # lcm = 3 * 2**23
    with pytest.raises(TickDomainError, match="scale"):
        TickDomain.for_values(values)


def test_for_values_at_max_scale_round_trips():
    values = [Fraction(1, 1 << 12), Fraction(1, 1 << 24)]
    domain = TickDomain.for_values(values)
    assert domain.scale == MAX_SCALE
    for v in values:
        assert domain.to_time(domain.to_ticks(v)) == v
