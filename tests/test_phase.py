"""Tests for the winner phase diagram."""

from fractions import Fraction

from repro.core.analysis import best_algorithm
from repro.report.phase import LETTERS, phase_diagram, winner_grid


class TestWinnerGrid:
    def test_grid_shape(self):
        grid = winner_grid(12, [1, 4], [1, Fraction(5, 2), 8])
        assert len(grid) == 3
        assert all(len(row) == 2 for row in grid)

    def test_matches_best_algorithm(self):
        grid = winner_grid(12, [1, 8], [2])
        for (name, ratio), m in zip(grid[0], (1, 8)):
            expect_name, _ = best_algorithm(12, m, 2)
            assert name == expect_name
            assert ratio >= 1

    def test_m1_winner_is_optimal(self):
        grid = winner_grid(20, [1], [1, 2, Fraction(5, 2), 8])
        for row in grid:
            name, ratio = row[0]
            assert ratio == 1.0  # m=1 winner achieves f_lambda(n)


class TestDiagram:
    def test_letters_cover_families(self):
        assert set(LETTERS.keys()) == {
            "REPEAT", "PACK", "PIPELINE", "DTREE-LINE", "DTREE-BINARY",
            "DTREE-LATENCY", "DTREE-STAR",
        }
        # distinct letters per family
        assert len(set(LETTERS.values())) == len(LETTERS)

    def test_render_plain(self):
        text = phase_diagram(12, [1, 4, 16], [1, Fraction(5, 2)])
        lines = text.splitlines()
        assert "m=1" in lines[0] and "m=16" in lines[0]
        assert "legend:" in text
        assert "2.5 |" in text

    def test_render_with_ratio(self):
        text = phase_diagram(12, [1, 16], [2], show_ratio=True)
        assert "1.0" in text  # the m=1 optimum

    def test_narrative_shape(self):
        """The Section 4 story: m=1 column achieves LB; large-m column is
        won by a pipelining family."""
        grid = winner_grid(24, [1, 200], [1, Fraction(5, 2), 8])
        for row in grid:
            assert row[0][1] == 1.0
            assert row[1][0] in ("PIPELINE", "DTREE-LINE")

    def test_cli_phase(self, capsys):
        from repro.cli import main

        code = main(["phase", "--n", "8", "--ms", "1,8", "--lams", "1,5/2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "legend:" in out
