"""Tests for the postal machine substrate (repro.postal)."""

from fractions import Fraction

import pytest

from repro.errors import (
    InvalidParameterError,
    ScheduleError,
    SimultaneousIOError,
)
from repro.postal.machine import ContentionPolicy, PostalSystem
from repro.postal.validator import audit_ports, schedule_from_trace, validate_run
from repro.sim.engine import Environment


def make(n=4, lam=Fraction(5, 2), policy=ContentionPolicy.STRICT):
    env = Environment()
    return env, PostalSystem(env, n, lam, policy=policy)


class TestDefinitions:
    """Definitions 1 and 2 of the paper as observable machine behaviour."""

    def test_sender_busy_one_unit(self):
        env, sys_ = make()
        done = []

        def prog():
            yield sys_.send(0, 1, 0)
            done.append(env.now)

        env.process(prog())
        env.run()
        assert done == [1]  # sender freed at t=1

    def test_receiver_gets_message_at_lambda(self):
        env, sys_ = make(lam=Fraction(5, 2))
        got = []

        def sender():
            yield sys_.send(0, 1, 0, payload="data")

        def receiver():
            message = yield sys_.recv(1)
            got.append((env.now, message.arrived_at, message.payload))

        env.process(sender())
        env.process(receiver())
        env.run()
        assert got == [(Fraction(5, 2), Fraction(5, 2), "data")]

    def test_lambda_one_telephone_case(self):
        # the receive window [t, t+1) coincides with the send window
        env, sys_ = make(lam=1)
        got = []

        def sender():
            yield sys_.send(0, 1, 0)

        def receiver():
            message = yield sys_.recv(1)
            got.append(message.arrived_at)

        env.process(sender())
        env.process(receiver())
        env.run()
        assert got == [1]

    def test_simultaneous_send_and_receive_ok(self):
        """Full duplex: p1 can receive one message while sending another."""
        env, sys_ = make(lam=3)

        def p0():
            yield sys_.send(0, 1, 0)  # busy [0,1), p1 receives [2,3)
            yield sys_.send(0, 2, 0)

        def p1():
            yield sys_.recv(1)
            # immediately forward while p0's second send is in flight
            yield sys_.send(1, 3, 0)

        env.process(p0())
        env.process(p1())
        env.run()
        audit_ports(sys_)  # no violations

    def test_sends_serialize(self):
        """Two sends by one processor occupy consecutive units."""
        env, sys_ = make()
        times = []

        def prog():
            yield sys_.send(0, 1, 0)
            times.append(env.now)
            yield sys_.send(0, 2, 0)
            times.append(env.now)

        env.process(prog())
        env.run()
        assert times == [1, 2]

    def test_full_connectivity(self):
        # any pair can communicate, both directions
        env, sys_ = make(n=3, lam=1)

        def prog():
            yield sys_.send(2, 0, 0)

        def rx():
            yield sys_.recv(0)

        env.process(prog())
        env.process(rx())
        env.run()
        assert len(sys_.tracer.records("deliver")) == 1


class TestContention:
    def _two_overlapping_deliveries(self, policy):
        env = Environment()
        sys_ = PostalSystem(env, 3, 2, policy=policy)

        # p0 and p1 both send to p2 with overlapping receive windows:
        # p0 @0 -> arr 2 (busy [1,2)); p1 @1/2 -> arr 5/2 (busy [3/2,5/2))
        def p0():
            yield sys_.send(0, 2, 0)

        def p1():
            yield env.timeout(Fraction(1, 2))
            yield sys_.send(1, 2, 1)

        env.process(p0())
        env.process(p1())
        return env, sys_

    def test_strict_raises(self):
        env, _ = self._two_overlapping_deliveries(ContentionPolicy.STRICT)
        with pytest.raises(SimultaneousIOError):
            env.run()

    def test_queued_serializes(self):
        env, sys_ = self._two_overlapping_deliveries(ContentionPolicy.QUEUED)
        env.run()
        deliveries = sorted(
            rec.data.arrived_at for rec in sys_.tracer.records("deliver")
        )
        # first arrives on time at 2; second is pushed back to 3
        assert deliveries == [2, 3]

    def test_same_instant_handoff_legal(self):
        """A delivery starting exactly when the previous receive ends is
        legal in strict mode (half-open intervals)."""
        env = Environment()
        sys_ = PostalSystem(env, 3, 1, policy=ContentionPolicy.STRICT)

        def p0():
            yield sys_.send(0, 2, 0)  # p2 busy [0,1)
            yield sys_.send(0, 2, 1)  # p2 busy [1,2): abuts, fine

        env.process(p0())
        env.run()
        assert len(sys_.tracer.records("deliver")) == 2


class TestValidator:
    def test_schedule_reconstruction(self):
        env, sys_ = make(n=2)

        def prog():
            yield sys_.send(0, 1, 0)

        env.process(prog())
        env.run()
        sched = validate_run(sys_, m=1)
        assert sched.completion_time() == Fraction(5, 2)

    def test_reconstruction_requires_strict(self):
        env = Environment()
        sys_ = PostalSystem(env, 2, 2, policy=ContentionPolicy.QUEUED)
        from repro.errors import ModelError

        with pytest.raises(ModelError):
            schedule_from_trace(sys_, m=1)

    def test_incomplete_broadcast_flagged(self):
        env, sys_ = make(n=3)

        def prog():
            yield sys_.send(0, 1, 0)  # p2 never informed

        env.process(prog())
        env.run()
        with pytest.raises(ScheduleError):
            validate_run(sys_, m=1)

    def test_port_audit_lengths(self):
        env, sys_ = make(n=2)

        def prog():
            yield sys_.send(0, 1, 0)

        env.process(prog())
        env.run()
        audit_ports(sys_)
        send_log = sys_.send_port(0).busy_intervals
        recv_log = sys_.recv_port(1).busy_intervals
        assert send_log == [(0, 1)]
        assert recv_log == [(Fraction(3, 2), Fraction(5, 2))]


class TestAPI:
    def test_bad_n(self):
        with pytest.raises(InvalidParameterError):
            PostalSystem(Environment(), 0, 2)

    def test_bad_lambda(self):
        with pytest.raises(InvalidParameterError):
            PostalSystem(Environment(), 2, Fraction(1, 2))

    def test_self_send_rejected(self):
        env, sys_ = make()
        with pytest.raises(InvalidParameterError):
            sys_.send(1, 1, 0)

    def test_out_of_range(self):
        env, sys_ = make(n=2)
        with pytest.raises(InvalidParameterError):
            sys_.send(0, 5, 0)
        with pytest.raises(InvalidParameterError):
            sys_.recv(9)

    def test_inbox_size(self):
        env, sys_ = make(n=2)

        def prog():
            yield sys_.send(0, 1, 0)

        env.process(prog())
        env.run()
        assert sys_.inbox_size(1) == 1
