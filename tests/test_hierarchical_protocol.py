"""Tests for pair-dependent latency and the event-driven hierarchical
broadcast."""

from fractions import Fraction

import pytest

from repro.errors import InvalidParameterError, ModelError
from repro.extensions.hierarchical import (
    HierarchicalBcastProtocol,
    HierarchicalSystem,
    flat_bcast_time,
    hierarchical_bcast_time,
)
from repro.postal import run_protocol
from repro.postal.machine import PostalSystem
from repro.postal.validator import schedule_from_trace
from repro.sim.engine import Environment

CASES = [
    (8, 32, 1, 12),
    (16, 16, 2, 8),
    (4, 64, 1, 30),
    (1, 16, 2, 5),
    (5, 1, 1, 3),
    (4, 4, 3, 3),
    (3, 7, Fraction(3, 2), Fraction(5, 2)),
]


class TestPairLatencyMachine:
    def test_latency_lookup(self):
        env = Environment()
        sys_ = PostalSystem(
            env, 4, 10, latency=lambda s, d: 2 if (s // 2) == (d // 2) else 10
        )
        assert not sys_.uniform_latency
        assert sys_.latency(0, 1) == 2
        assert sys_.latency(0, 2) == 10

    def test_uniform_by_default(self):
        sys_ = PostalSystem(Environment(), 4, 3)
        assert sys_.uniform_latency
        assert sys_.latency(0, 3) == 3

    def test_bad_latency_value_rejected(self):
        env = Environment()
        sys_ = PostalSystem(env, 2, 2, latency=lambda s, d: Fraction(1, 2))
        with pytest.raises(InvalidParameterError):
            sys_.latency(0, 1)

    def test_delivery_uses_pair_latency(self):
        env = Environment()
        sys_ = PostalSystem(env, 3, 10, latency=lambda s, d: 2 + d)
        arrivals = {}

        def tx():
            yield sys_.send(0, 1, 0)
            yield sys_.send(0, 2, 0)

        def rx(p):
            message = yield sys_.recv(p)
            arrivals[p] = message.arrived_at

        env.process(tx())
        env.process(rx(1))
        env.process(rx(2))
        env.run()
        assert arrivals[1] == 0 + 3  # latency 2+1
        assert arrivals[2] == 1 + 4  # sent at 1, latency 2+2

    def test_schedule_reconstruction_refused(self):
        env = Environment()
        sys_ = PostalSystem(env, 2, 2, latency=lambda s, d: 2)

        def tx():
            yield sys_.send(0, 1, 0)

        env.process(tx())
        env.run()
        with pytest.raises(ModelError):
            schedule_from_trace(sys_, m=1)


class TestHierarchicalProtocol:
    @pytest.mark.parametrize("case", CASES, ids=str)
    def test_matches_closed_form(self, case):
        k, c, ll, lg = case
        sys_ = HierarchicalSystem.of(k, c, ll, lg)
        proto = HierarchicalBcastProtocol(sys_)
        run_protocol(proto)  # port audit runs; no schedule (pair latency)
        assert len(proto.informed_at) == sys_.n
        assert max(proto.informed_at.values()) == hierarchical_bcast_time(
            sys_, overlap=True
        )

    def test_everyone_informed_once(self):
        sys_ = HierarchicalSystem.of(4, 8, 1, 6)
        proto = HierarchicalBcastProtocol(sys_)
        res = run_protocol(proto)
        assert set(proto.informed_at) == set(range(32))
        assert res.sends == 31  # one delivery per non-root processor

    def test_beats_flat_baseline_in_simulation(self):
        sys_ = HierarchicalSystem.of(8, 32, 1, 12)
        proto = HierarchicalBcastProtocol(sys_)
        run_protocol(proto)
        assert max(proto.informed_at.values()) < flat_bcast_time(sys_)

    def test_overlap_at_least_as_good_in_simulation(self):
        for case in CASES:
            sys_ = HierarchicalSystem.of(*case)
            proto = HierarchicalBcastProtocol(sys_)
            run_protocol(proto)
            assert max(proto.informed_at.values()) <= hierarchical_bcast_time(
                sys_, overlap=False
            )
