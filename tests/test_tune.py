"""Tests for the postal autotuner (:mod:`repro.tune`): ranking and
selection, the content-hashed :class:`TuningTable` artifact, the
byte-reproducibility differential (serial vs ``--jobs 4``), the
two-level tune cache, ``family="auto"`` in :func:`run_protocol` /
:func:`run_batch`, the committed ``TUNING_postal.json`` drift check,
the ``bench_tune`` gate section, and the ``repro tune`` CLI."""

import json
from fractions import Fraction
from pathlib import Path

import pytest

from repro import run_protocol, select_protocol
from repro.batch import BatchPoint, run_batch
from repro.bench import TUNE_GATE_TOLERANCE, bench_tune, to_json
from repro.errors import InvalidParameterError, TuningError
from repro.tune import (
    RankedEntry,
    TableEntry,
    TuneCache,
    TuneQuery,
    TuningTable,
    auto_workload,
    candidate_families,
    derive_table,
    rank,
    resolve_family,
    verify_table,
    workloads,
)
from repro.tune.cache import _grid_key, cached_table

COMMITTED = Path(__file__).resolve().parent.parent / "TUNING_postal.json"

# a small grid for the differential tests — same code path as the
# pinned postal-default/1 grid, a fraction of the derivation time
SMALL_GRID = tuple(
    TuneQuery("broadcast", n, m, lam)
    for n in (4, 16)
    for m in (1, 2)
    for lam in ("2", "5/2")
)


class TestRank:
    def test_figure1_point_winner(self):
        ranking = rank("broadcast", 14, 1, "5/2")
        assert ranking[0].family == "BCAST"
        assert ranking[0].predicted == Fraction(15, 2)
        assert ranking[0].exact
        # calibration ran for the four-way exact tie at 15/2
        assert ranking[0].measured == Fraction(15, 2)
        assert ranking[0].sends == 13

    def test_calibration_reranks_upper_bounds(self):
        # DTREE-LATENCY's bound at (14, 1, 5/2) is 11 — behind
        # BINOMIAL's exact 10 — but its measured completion is 9, so
        # calibration must place it above BINOMIAL
        ranking = rank("broadcast", 14, 1, "5/2")
        order = [c.family for c in ranking]
        assert order.index("DTREE-LATENCY") < order.index("BINOMIAL")
        latency = next(c for c in ranking if c.family == "DTREE-LATENCY")
        assert not latency.exact
        assert latency.measured == 9

    def test_no_calibrate_keeps_closed_form_order(self):
        ranking = rank("broadcast", 14, 1, "5/2", calibrate=False)
        assert all(c.measured is None and c.sends is None for c in ranking)
        order = [c.family for c in ranking]
        assert order.index("BINOMIAL") < order.index("DTREE-LATENCY")

    def test_scores_are_nondecreasing(self):
        ranking = rank("broadcast", 64, 4, 2)
        scores = [c.score for c in ranking]
        assert scores == sorted(scores)

    def test_collective_workload(self):
        ranking = rank("allgather", 16, 1, 2)
        assert {c.family for c in ranking} <= {
            "ALLGATHER", "BRUCK-ALLGATHER", "GOSSIP-RING",
        }
        assert ranking[0].score == min(c.score for c in ranking)

    def test_unknown_workload(self):
        with pytest.raises(InvalidParameterError, match="unknown workload"):
            rank("multicast", 8)

    def test_n_too_small(self):
        with pytest.raises(InvalidParameterError, match="n >= 2"):
            rank("broadcast", 1)

    def test_inapplicable_point_raises_tuning_error(self):
        # the allgather families are single-message only
        with pytest.raises(
            TuningError, match="no registered family is applicable"
        ):
            rank("allgather", 16, 2, 2)

    def test_workload_listing(self):
        assert workloads() == (
            "allgather", "allreduce", "alltoall", "barrier",
            "broadcast", "gather", "reduce", "scatter",
        )
        assert "GOSSIP-RING" in candidate_families("allgather")


class TestSelect:
    def test_select_broadcast(self):
        assert select_protocol("broadcast", 14, lam="5/2") == "BCAST"

    def test_table_short_circuits_derivation(self):
        # a committed entry wins over on-the-spot derivation, even when
        # it names a different family — that is the point of a table
        entry = TableEntry(
            workload="broadcast", n=14, m=1, lam="5/2", policy="strict",
            winner="BINOMIAL",
            ranking=(RankedEntry("BINOMIAL", "10", True),),
        )
        table = TuningTable(grid="test/1", entries=(entry,))
        assert (
            select_protocol("broadcast", 14, lam="5/2", table=table)
            == "BINOMIAL"
        )
        # a query off the table falls through to derivation
        assert (
            select_protocol("broadcast", 16, lam=2, table=table) == "BCAST"
        )

    def test_require_plan_is_satisfiable_everywhere(self):
        # every registered family compiles to a plan, so require_plan
        # must never change the answer on the default grid
        for workload, n, lam in (
            ("broadcast", 14, "5/2"), ("allgather", 16, 2), ("reduce", 8, 2),
        ):
            assert select_protocol(
                workload, n, lam=lam, require_plan=True
            ) == select_protocol(workload, n, lam=lam)

    def test_auto_workload_spec(self):
        assert auto_workload("auto") == "broadcast"
        assert auto_workload("auto:allgather") == "allgather"
        assert auto_workload("AUTO:BARRIER") == "barrier"
        assert auto_workload("BCAST") is None
        with pytest.raises(InvalidParameterError, match="unknown workload"):
            auto_workload("auto:multicast")

    def test_resolve_family_passthrough(self):
        assert resolve_family("BCAST", 14) == "BCAST"
        assert resolve_family("auto", 14, lam="5/2") == "BCAST"


class TestTuningTable:
    def _table(self):
        return derive_table(SMALL_GRID, grid="test/1")

    def test_round_trip(self):
        table = self._table()
        again = TuningTable.from_json(table.to_json())
        assert again == table
        assert again.content_hash == table.content_hash

    def test_canonical_rendering(self):
        text = self._table().to_json()
        assert text.endswith("\n")
        doc = json.loads(text)
        assert doc["schema"] == "repro-tune/1"
        assert doc["grid"] == "test/1"
        assert len(doc["entries"]) == len(SMALL_GRID)

    def test_hash_mismatch_rejected(self):
        doc = json.loads(self._table().to_json())
        doc["entries"][0]["winner"] = "STAR"  # tamper without re-hashing
        with pytest.raises(TuningError, match="content hash mismatch"):
            TuningTable.from_json(json.dumps(doc))

    def test_unknown_schema_rejected(self):
        doc = json.loads(self._table().to_json())
        doc["schema"] = "repro-tune/99"
        with pytest.raises(TuningError, match="unsupported tuning table"):
            TuningTable.from_json(json.dumps(doc))

    def test_malformed_json_rejected(self):
        with pytest.raises(TuningError, match="not valid JSON"):
            TuningTable.from_json("{nope")
        with pytest.raises(TuningError, match="JSON object"):
            TuningTable.from_json("[1, 2]")
        with pytest.raises(TuningError, match="unsupported tuning table"):
            TuningTable.from_json("{}")

    def test_lookup_normalizes_lambda(self):
        table = self._table()
        a = table.lookup("broadcast", 16, 1, "5/2")
        b = table.lookup("broadcast", 16, 1, Fraction(5, 2))
        assert a is not None and a is b
        assert table.lookup("broadcast", 16, 1, 3) is None

    def test_save_and_load(self, tmp_path):
        table = self._table()
        path = table.save(tmp_path / "t.json")
        assert TuningTable.load(path) == table
        with pytest.raises(TuningError, match="cannot read"):
            TuningTable.load(tmp_path / "missing.json")


class TestByteReproducibility:
    def test_serial_vs_jobs4_identical_bytes(self, monkeypatch):
        # jobs=4 may oversubscribe a small runner; the (legitimate)
        # warning is not what this test is about, and the -W error CI
        # lane must stay green
        from repro import parallel

        monkeypatch.setattr(parallel, "_warned_oversubscribed", True)
        serial = derive_table(SMALL_GRID, jobs=1, grid="test/1")
        sharded = derive_table(SMALL_GRID, jobs=4, grid="test/1")
        assert serial.to_json() == sharded.to_json()
        assert serial.content_hash == sharded.content_hash

    def test_committed_table_verifies(self):
        # the CI nightly drift check, run in-process: re-deriving the
        # committed grid must reproduce TUNING_postal.json byte for byte
        ok, fresh, committed_text, fresh_text = verify_table(COMMITTED)
        assert ok, "committed TUNING_postal.json has drifted — regenerate it"
        assert fresh_text == committed_text
        assert len(fresh) == 74

    def test_verify_detects_drift(self, tmp_path):
        # an *authentic* table (hash matches) whose decisions differ:
        # drop one entry and re-serialize
        committed = TuningTable.load(COMMITTED)
        drifted = TuningTable(
            grid=committed.grid, entries=committed.entries[1:]
        )
        path = drifted.save(tmp_path / "drifted.json")
        ok, fresh, committed_text, fresh_text = verify_table(path)
        assert not ok
        assert fresh_text != committed_text

    def test_verify_missing_file(self, tmp_path):
        with pytest.raises(TuningError, match="cannot read"):
            verify_table(tmp_path / "nope.json")


class TestTuneCache:
    def test_disk_round_trip(self, tmp_path):
        cache = TuneCache(mode="disk", directory=tmp_path)
        key = _grid_key("test/1", SMALL_GRID)
        assert cache.lookup(key) is None
        table = derive_table(SMALL_GRID, grid="test/1")
        cache.store(key, table)
        # a fresh instance sees only the disk level — and the cache
        # file on disk *is* a valid, authenticated tuning table
        fresh = TuneCache(mode="disk", directory=tmp_path)
        assert fresh.lookup(key) == table
        (path,) = tmp_path.glob("*.tune.json")
        assert TuningTable.from_json(path.read_text()) == table

    def test_corrupt_file_discarded(self, tmp_path, caplog):
        cache = TuneCache(mode="disk", directory=tmp_path)
        key = _grid_key("test/1", SMALL_GRID)
        cache.path_for(key).write_bytes(b"{corrupt")
        with caplog.at_level("WARNING", logger="repro.tune.cache"):
            assert cache.lookup(key) is None
        assert "discarding corrupt" in caplog.text

    def test_grid_mismatch_discarded(self, tmp_path, caplog):
        # an authentic table cached under a key demanding another grid
        # (hash collision / copied file) is rejected by check()
        cache = TuneCache(mode="disk", directory=tmp_path)
        key = _grid_key("other-grid/1", SMALL_GRID)
        table = derive_table(SMALL_GRID, grid="test/1")
        cache.path_for(key).write_bytes(table.to_json().encode())
        with caplog.at_level("WARNING", logger="repro.tune.cache"):
            assert cache.lookup(key) is None
        assert "rederived" in caplog.text

    def test_cached_table_derives_once(self, tmp_path):
        cache = TuneCache(mode="disk", directory=tmp_path)
        a = cached_table(SMALL_GRID, grid="test/1", cache=cache)
        b = cached_table(SMALL_GRID, grid="test/1", cache=cache)
        assert a == b
        stats = cache.stats()
        assert stats["misses"] == 1 and stats["hits"] == 1

    def test_bad_mode_rejected(self):
        with pytest.raises(InvalidParameterError, match="REPRO_TUNE_CACHE"):
            TuneCache(mode="turbo")


class TestAutoFamily:
    def test_run_protocol_auto(self):
        res = run_protocol("auto", n=14, lam="5/2")
        assert res.completion_time == Fraction(15, 2)  # optimal BCAST
        assert res.sends == 13

    def test_run_protocol_auto_collective(self):
        auto = run_protocol("auto:allgather", n=8, lam=2, backend="turbo")
        fixed = run_protocol(
            select_protocol("allgather", 8, lam=2), n=8, lam=2,
            backend="turbo",
        )
        assert auto.completion_time == fixed.completion_time
        assert auto.sends == fixed.sends

    def test_run_protocol_by_name_requires_n(self):
        with pytest.raises(InvalidParameterError, match="requires n"):
            run_protocol("auto")

    def test_run_batch_auto_matches_fixed(self):
        points = [
            BatchPoint("auto", 14, 1, "5/2", "strict"),
            BatchPoint("BCAST", 14, 1, "5/2", "strict"),
        ]
        auto, fixed = run_batch(points)
        assert auto.family == fixed.family == "BCAST"
        assert auto.completion == fixed.completion
        assert auto.sends == fixed.sends
        assert auto.digest == fixed.digest


class TestBenchTune:
    POINTS = ((64, 1, "2"), (64, 4, "2"))

    def test_section_shape(self):
        section = bench_tune(points=self.POINTS)
        assert section["gate"]["points"] == 2
        assert section["gate"]["tolerance"] == TUNE_GATE_TOLERANCE
        assert section["gate"]["ok"] is True
        for row in section["points"]:
            assert row["ok"] is True
            # at these pinned points the auto pick is the measured best
            assert row["auto"] == row["best_family"] or (
                row["auto_completion"] == row["best_completion"]
            )

    def test_to_json_carries_tune_section(self):
        from tests.test_bench_sections import _fake_results

        tune = {"points": [], "gate": {"ok": True, "points": 0}}
        doc = json.loads(
            to_json(_fake_results(), mode="smoke", jobs=1, tune=tune)
        )
        assert doc["bench_tune"]["gate"]["ok"] is True

    def test_to_json_omits_tune_when_not_measured(self):
        from tests.test_bench_sections import _fake_results

        doc = json.loads(to_json(_fake_results(), mode="smoke"))
        assert "bench_tune" not in doc


class TestTuneCLI:
    def _run(self, capsys, *argv):
        from repro.cli import main

        code = main(list(argv))
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    def test_query_mode(self, capsys):
        code, out, _ = self._run(
            capsys, "tune", "--workload", "broadcast",
            "--n", "14", "--lam", "5/2",
        )
        assert code == 0
        assert "selected: BCAST" in out
        assert "DTREE-LATENCY" in out  # full ranking is printed

    def test_query_against_committed_table(self, capsys):
        code, out, _ = self._run(
            capsys, "tune", "--workload", "broadcast",
            "--n", "64", "--lam", "2", "--table", str(COMMITTED),
        )
        assert code == 0
        assert "selected: BCAST" in out

    def test_query_requires_n(self, capsys):
        with pytest.raises(SystemExit, match="--n"):
            self._run(capsys, "tune", "--workload", "broadcast")

    def test_verify_committed_table_passes(self, capsys):
        code, out, _ = self._run(
            capsys, "tune", "--verify", str(COMMITTED),
        )
        assert code == 0
        assert "verified: 74 entries" in out

    def test_verify_drift_fails_and_writes_fresh(self, capsys, tmp_path):
        committed = TuningTable.load(COMMITTED)
        drifted = TuningTable(
            grid=committed.grid, entries=committed.entries[:-1]
        )
        path = drifted.save(tmp_path / "drifted.json")
        fresh_out = tmp_path / "fresh.json"
        code, _, err = self._run(
            capsys, "tune", "--verify", str(path),
            "--fresh-out", str(fresh_out),
        )
        assert code == 1
        assert "DRIFTED" in err
        # the fresh table is the committed one (re-derived, authentic)
        assert TuningTable.load(fresh_out) == committed

    def test_sweep_writes_canonical_table(self, capsys, tmp_path,
                                          monkeypatch):
        monkeypatch.setenv("REPRO_TUNE_CACHE", "off")
        import repro.tune.cache as tune_cache

        monkeypatch.setattr(tune_cache, "_DEFAULT", None)
        out_path = tmp_path / "table.json"
        code, out, _ = self._run(
            capsys, "tune", "--sweep", "--out", str(out_path),
        )
        assert code == 0
        assert TuningTable.load(out_path).to_json() == COMMITTED.read_text()
