"""Tests for the Bruck recursive-doubling allgather."""

from fractions import Fraction

import pytest

from repro.collectives.allgather import allgather_time
from repro.collectives.bruck import (
    BruckAllgatherProtocol,
    bruck_rounds,
    bruck_time,
)
from repro.collectives.gossip import gossip_lower_bound, gossip_ring_time
from repro.errors import InvalidParameterError
from repro.postal import run_protocol

from tests.grids import LAMBDAS


class TestRounds:
    def test_block_sizes_sum(self):
        for n in range(1, 40):
            sizes = bruck_rounds(n)
            assert sum(sizes) == max(0, n - 1)

    def test_power_of_two_doubling(self):
        assert bruck_rounds(16) == [1, 2, 4, 8]

    def test_non_power(self):
        assert bruck_rounds(5) == [1, 2, 1]  # last round truncated
        assert bruck_rounds(3) == [1, 1]

    def test_bad_n(self):
        with pytest.raises(InvalidParameterError):
            bruck_rounds(0)


class TestProtocol:
    @pytest.mark.parametrize("lam", LAMBDAS, ids=str)
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 7, 8, 13, 16, 17])
    def test_time_and_completeness(self, lam, n):
        proto = BruckAllgatherProtocol(n, lam)
        res = run_protocol(proto)
        assert res.completion_time == bruck_time(n, lam)
        for p in range(n):
            assert proto.known[p] == {i: i for i in range(n)}

    def test_rumor_values(self):
        rumors = ["a", "b", "c", "d", "e"]
        proto = BruckAllgatherProtocol(5, 2, rumors=rumors)
        run_protocol(proto)
        assert proto.known[3] == dict(enumerate(rumors))

    def test_send_count(self):
        # every processor transmits n-1 rumor units
        proto = BruckAllgatherProtocol(8, 2)
        res = run_protocol(proto)
        assert res.sends == 8 * 7

    def test_rumor_length_checked(self):
        with pytest.raises(ValueError):
            BruckAllgatherProtocol(3, 2, rumors=[1])


class TestComparisons:
    @pytest.mark.parametrize("lam", LAMBDAS, ids=str)
    def test_above_lower_bound(self, lam):
        for n in (2, 8, 16):
            assert bruck_time(n, lam) >= gossip_lower_bound(n, lam)

    def test_dominates_ring_for_lambda_above_1(self):
        for lam in (Fraction(3, 2), Fraction(5, 2), Fraction(10)):
            for n in (4, 8, 16, 32):
                assert bruck_time(n, lam) < gossip_ring_time(n, lam)

    def test_matches_ring_at_lambda_1(self):
        # at lambda=1 both meet the port bound n-1
        for n in (4, 8, 16):
            assert bruck_time(n, 1) == gossip_ring_time(n, 1) == n - 1

    def test_beats_gather_pipeline_at_high_lambda(self):
        assert bruck_time(16, 10) < allgather_time(16, 10)
