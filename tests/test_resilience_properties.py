"""Hypothesis property suite for :mod:`repro.resilience` fault plans.

Four invariants the issue names, quantified over random rates, seeds,
and rational latencies/jitters instead of hand-picked grids:

* survivors always receive every message (recovery is total);
* crash sets never include the root, however the rates are drawn;
* jitter stays on the tick grid — drawn offsets are whole ticks in
  range, and off-grid jitter requests fail loudly;
* the plan's chaos-mutation self-accounting is exact: counters match a
  from-scratch replay of its own seeded streams.
"""

import random
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fibfunc import postal_f
from repro.errors import TickDomainError
from repro.resilience import FaultPlan, run_resilient
from repro.turbo.ticks import TickDomain
from repro.parallel import derive_seed

from .grids import lambdas

pytestmark = pytest.mark.resilience

rates = st.floats(0.0, 0.95, allow_nan=False, allow_infinity=False)
seeds = st.integers(0, 2**32 - 1)


class TestSurvivorsAlwaysCovered:
    @given(
        n=st.integers(2, 16),
        loss=st.floats(0.0, 0.5),
        crash=st.floats(0.0, 0.6),
        seed=seeds,
    )
    @settings(max_examples=25, deadline=None)
    def test_every_survivor_gets_every_message(self, n, loss, crash, seed):
        result = run_resilient(
            n, 2, m=2, loss=loss, crash=crash, seed=seed, detector="perfect"
        )
        assert result.violations == ()
        assert result.certified
        # the certificate already checks coverage; restate it directly
        assert result.deliveries >= 0
        assert result.survivors == n - len(result.crashed)

    @given(lam=lambdas(max_int=3), seed=seeds)
    @settings(max_examples=15, deadline=None)
    def test_fault_free_meets_lower_bound(self, lam, seed):
        result = run_resilient(9, lam, seed=seed)
        assert result.completion >= postal_f(lam, 9)
        assert result.certified


class TestRootNeverCrashes:
    @given(n=st.integers(2, 40), crash=rates, seed=seeds)
    @settings(max_examples=50)
    def test_sampled_crash_sets_exclude_root(self, n, crash, seed):
        plan = FaultPlan.compile(n, 2, crash=crash, seed=seed)
        assert 0 not in plan.crashed
        assert 0 in plan.survivors

    @given(n=st.integers(2, 40), crash=rates, seed=seeds, root=st.integers(0, 4))
    @settings(max_examples=50)
    def test_holds_for_any_root(self, n, crash, seed, root):
        root = root % n
        plan = FaultPlan.compile(n, 2, crash=crash, seed=seed, root=root)
        assert root not in plan.crashed

    @given(n=st.integers(2, 20), seed=seeds)
    @settings(max_examples=25)
    def test_explicit_root_crash_always_rejected(self, n, seed):
        with pytest.raises(Exception, match="root"):
            FaultPlan.compile(n, 2, crashed=[0], seed=seed)


class TestJitterStaysOnGrid:
    @given(
        lam=lambdas(max_int=4, max_denominator=4),
        num=st.integers(1, 8),
        seed=seeds,
    )
    @settings(max_examples=50)
    def test_drawn_jitter_is_whole_ticks_in_range(self, lam, num, seed):
        # jitter = num / lam.denominator is on the lambda-derived grid
        jitter = Fraction(num, TickDomain.for_values([lam]).scale)
        plan = FaultPlan.compile(6, lam, jitter=jitter, seed=seed)
        bound = plan.domain.to_ticks(jitter)
        for src in range(6):
            for dst in range(6):
                if src == dst:
                    continue
                dropped, ticks = plan.draw(src, dst)
                assert not dropped
                assert isinstance(ticks, int)
                assert 0 <= ticks <= bound

    @given(lam=lambdas(max_int=4, max_denominator=3), seed=seeds)
    @settings(max_examples=50)
    def test_off_grid_jitter_raises(self, lam, seed):
        scale = TickDomain.for_values([lam]).scale
        off = Fraction(1, 5 * scale)  # strictly finer than any grid point
        with pytest.raises(TickDomainError):
            FaultPlan.compile(6, lam, jitter=off, seed=seed)


class TestSelfAccountingExact:
    @given(
        loss=st.floats(0.0, 0.6),
        jitter_num=st.integers(0, 4),
        seed=seeds,
        draws=st.lists(
            st.tuples(st.integers(0, 7), st.integers(0, 7)),
            min_size=0,
            max_size=80,
        ),
    )
    @settings(max_examples=50)
    def test_counters_match_stream_replay(self, loss, jitter_num, seed, draws):
        lam = Fraction(5, 2)
        jitter = Fraction(jitter_num, 2)
        plan = FaultPlan.compile(8, lam, loss=loss, jitter=jitter, seed=seed)
        expect_drops = 0
        expect_jitter = 0
        streams: dict[tuple[int, int], random.Random] = {}
        for src, dst in draws:
            if src == dst:
                continue
            dropped, ticks = plan.draw(src, dst)
            rng = streams.setdefault(
                (src, dst),
                random.Random(derive_seed(plan.seed, "edge", src, dst)),
            )
            assert dropped == (rng.random() < loss)
            if plan.jitter:
                bound = plan.domain.to_ticks(jitter)
                assert ticks == rng.randint(0, bound)
            else:
                assert ticks == 0
            expect_drops += dropped
            expect_jitter += ticks
        assert plan.draws == sum(1 for s, d in draws if s != d)
        assert plan.drops_drawn == expect_drops
        assert plan.jitter_ticks_drawn == expect_jitter

    @given(loss=st.floats(0.0, 0.6), crash=st.floats(0.0, 0.5), seed=seeds)
    @settings(max_examples=20, deadline=None)
    def test_run_leaves_exact_books(self, loss, crash, seed):
        keep = []
        result = run_resilient(
            12,
            2,
            loss=loss,
            crash=crash,
            seed=seed,
            detector="perfect",
            keep=keep,
        )
        system, _, plan = keep[0]
        # the certificate's accounting checks passed, so the plan's books
        # reconcile with the system's realized counters exactly
        assert result.certified
        assert system.send_count == plan.draws
        assert system.dropped == plan.drops_drawn
        assert (
            result.deliveries
            == result.sends - result.loss_drops - result.crash_drops
        )
