"""Tests for the Section-5 extensions (adaptive, hierarchical, LogP)."""

from fractions import Fraction

import pytest

from repro.core.fibfunc import postal_f
from repro.errors import InvalidParameterError
from repro.extensions.adaptive import (
    LatencyProfile,
    adaptive_bcast_time,
    static_tree_under_profile,
)
from repro.extensions.hierarchical import (
    HierarchicalSystem,
    flat_bcast_time,
    hierarchical_bcast_time,
)
from repro.extensions.logp import (
    LogPParams,
    logp_arrival_times,
    logp_bcast_time,
    matches_postal,
    postal_lambda_of,
)

from tests.grids import LAMBDAS


class TestLatencyProfile:
    def test_constant(self):
        p = LatencyProfile.constant(Fraction(5, 2))
        assert p.lam_at(0) == p.lam_at(100) == Fraction(5, 2)

    def test_piecewise(self):
        p = LatencyProfile.of([(0, 2), (5, 4), (10, 1)])
        assert p.lam_at(0) == 2
        assert p.lam_at(Fraction(9, 2)) == 2
        assert p.lam_at(5) == 4
        assert p.lam_at(100) == 1

    def test_arrival(self):
        p = LatencyProfile.of([(0, 2), (5, 4)])
        assert p.arrival(3) == 5
        assert p.arrival(5) == 9

    def test_is_fifo(self):
        rising = LatencyProfile.of([(0, 1), (5, 3)])
        assert rising.is_fifo(horizon=100)
        falling = LatencyProfile.of([(0, 3), (5, 1)])
        assert not falling.is_fifo(horizon=100)
        assert falling.is_fifo(horizon=4)  # drop outside the horizon

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            LatencyProfile.of([])
        with pytest.raises(InvalidParameterError):
            LatencyProfile.of([(1, 2)])  # must start at 0
        with pytest.raises(InvalidParameterError):
            LatencyProfile.of([(0, 2), (0, 3)])  # non-increasing breaks
        with pytest.raises(InvalidParameterError):
            LatencyProfile.of([(0, Fraction(1, 2))])  # lambda < 1
        with pytest.raises(InvalidParameterError):
            LatencyProfile.constant(2).lam_at(-1)


class TestAdaptiveBroadcast:
    @pytest.mark.parametrize("lam", LAMBDAS, ids=str)
    def test_constant_profile_matches_f(self, lam):
        """With a constant profile the eager broadcast is exactly
        f_lambda(n) — the adaptive algorithm loses nothing."""
        profile = LatencyProfile.constant(lam)
        for n in (1, 2, 5, 14, 40):
            assert adaptive_bcast_time(n, profile) == postal_f(lam, n)

    def test_static_tree_matches_when_plan_correct(self, lam):
        profile = LatencyProfile.constant(lam)
        for n in (2, 14, 40):
            assert static_tree_under_profile(n, lam, profile) == postal_f(lam, n)

    def test_eager_beats_misplanned_tree(self):
        """Plan for lambda=1, actually lambda=4: the static binomial tree
        pays full latency every level; eager adapts."""
        profile = LatencyProfile.constant(4)
        n = 64
        eager = adaptive_bcast_time(n, profile)
        static = static_tree_under_profile(n, 1, profile)
        assert eager == postal_f(4, n)
        assert static > eager

    def test_rising_latency(self):
        """Latency rises mid-broadcast: eager still finishes, and no
        faster than both constant extremes."""
        profile = LatencyProfile.of([(0, 1), (2, 4)])
        n = 32
        t = adaptive_bcast_time(n, profile)
        assert postal_f(1, n) <= t <= postal_f(4, n)

    def test_eager_no_worse_than_any_static_plan_fifo(self):
        """For a FIFO profile, eager is optimal, hence no worse than any
        statically planned tree executed under the profile."""
        profile = LatencyProfile.of([(0, 2), (3, 3), (8, 3)])
        assert profile.is_fifo(horizon=100)
        n = 40
        eager = adaptive_bcast_time(n, profile)
        for plan in (1, 2, Fraction(5, 2), 3, 5):
            assert eager <= static_tree_under_profile(n, plan, profile)

    def test_n1(self):
        assert adaptive_bcast_time(1, LatencyProfile.constant(2)) == 0


class TestHierarchical:
    def test_construction_validation(self):
        with pytest.raises(InvalidParameterError):
            HierarchicalSystem.of(0, 4, 1, 2)
        with pytest.raises(InvalidParameterError):
            HierarchicalSystem.of(4, 4, 3, 2)  # local > global

    def test_latency_lookup(self):
        sys_ = HierarchicalSystem.of(3, 4, 1, 10)
        assert sys_.latency(0, 3) == 1  # same cluster (0..3)
        assert sys_.latency(0, 4) == 10  # across clusters
        assert sys_.n == 12

    def test_sequential_formula(self):
        sys_ = HierarchicalSystem.of(8, 16, 1, 10)
        t = hierarchical_bcast_time(sys_, overlap=False)
        assert t == postal_f(10, 8) + postal_f(1, 16)

    def test_overlap_no_slower(self):
        for k, c in ((4, 8), (8, 16), (16, 4)):
            sys_ = HierarchicalSystem.of(k, c, 1, 8)
            assert hierarchical_bcast_time(sys_, overlap=True) <= (
                hierarchical_bcast_time(sys_, overlap=False)
            )

    def test_beats_flat_when_hierarchy_real(self):
        sys_ = HierarchicalSystem.of(8, 32, 1, 12)
        assert hierarchical_bcast_time(sys_) < flat_bcast_time(sys_)

    def test_degenerate_single_cluster(self):
        sys_ = HierarchicalSystem.of(1, 16, 2, 5)
        assert hierarchical_bcast_time(sys_) == postal_f(2, 16)

    def test_flat_equals_hierarchy_when_latencies_equal(self):
        # no hierarchy advantage if local == global... the two-phase tree
        # is then merely *a* valid schedule, so it cannot beat flat BCAST
        sys_ = HierarchicalSystem.of(4, 4, 3, 3)
        assert hierarchical_bcast_time(sys_) >= flat_bcast_time(sys_)


class TestLogP:
    def test_params_validation(self):
        with pytest.raises(InvalidParameterError):
            LogPParams.of(1, 0, 1, 4)  # o must be positive
        with pytest.raises(InvalidParameterError):
            LogPParams.of(1, 2, 1, 4)  # g < o
        with pytest.raises(InvalidParameterError):
            LogPParams.of(-1, 1, 1, 4)
        with pytest.raises(InvalidParameterError):
            LogPParams.of(1, 1, 1, 0)

    def test_postal_lambda(self):
        params = LogPParams.of(3, 2, 2, 8)
        assert postal_lambda_of(params) == Fraction(7, 2)

    @pytest.mark.parametrize("L", [0, 1, 3, 10])
    @pytest.mark.parametrize("P", [1, 2, 5, 14, 64])
    def test_identity_with_postal(self, L, P):
        """With g == o, optimal LogP broadcast == o * f_{(L+2o)/o}(P)."""
        params = LogPParams.of(L, 1, 1, P)
        assert matches_postal(params)

    def test_identity_with_scaled_overhead(self):
        params = LogPParams.of(Fraction(3), Fraction(1, 2), Fraction(1, 2), 14)
        assert matches_postal(params)

    def test_gap_larger_than_o_slows_broadcast(self):
        fast = LogPParams.of(4, 1, 1, 32)
        slow = LogPParams.of(4, 1, 3, 32)
        assert logp_bcast_time(slow) > logp_bcast_time(fast)

    def test_arrivals_sorted(self):
        arr = logp_arrival_times(LogPParams.of(2, 1, 1, 20))
        assert arr == sorted(arr)
        assert len(arr) == 19

    def test_matches_postal_requires_g_eq_o(self):
        with pytest.raises(InvalidParameterError):
            matches_postal(LogPParams.of(1, 1, 2, 4))

    def test_p1_zero(self):
        assert logp_bcast_time(LogPParams.of(5, 1, 1, 1)) == 0
