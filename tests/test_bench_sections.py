"""Unit tests for the bench document sections added in schemas ``/5``
and ``/6``: the per-case replay column, the replay gate,
``effective_jobs`` recording, the (warn-once) oversubscription warning,
the ``--profile`` hook, and the ``/6`` batch tier — the ``bench_batch``
section, its two gates, and the NumPy version stamped in the header."""

import json
import os

import pytest

from repro import bench, parallel
from repro.bench import (
    BATCH_GATE_MIN_SPEEDUP,
    BATCH_KERNEL_GATE_MIN_SPEEDUP,
    BenchCase,
    BenchResult,
    REPLAY_GATE_MIN_SPEEDUP,
    SCHEMA,
    batch_grid,
    bench_batch,
    bench_replay,
    compare_to_baseline,
    profile_case,
    run_bench,
    run_case,
    to_json,
)
from repro.types import as_time

_LAM = as_time(2)


def _fake_results():
    """A synthetic grid containing both gate cases."""
    def mk(fam, n, ex, tu, sends, rp):
        return BenchResult(BenchCase(fam, n, 1, _LAM), ex, tu, sends, rp)

    return [
        mk("BCAST", 10_000, 3.0, 0.5, 9_999, 0.05),
        mk("ALLGATHER", 100, 1.5, 0.12, 9_999, 0.01),
    ]


def test_to_json_records_replay_and_effective_jobs():
    doc = json.loads(to_json(_fake_results(), mode="smoke", jobs=0))
    assert doc["schema"] == SCHEMA == "repro-bench-turbo/7"
    assert doc["jobs"] == 0
    assert doc["effective_jobs"] == (os.cpu_count() or 1)
    case = doc["cases"][0]
    assert case["replay_s"] == 0.05
    assert case["replay_speedup"] == 60.0
    assert case["speedup"] == 6.0


def test_to_json_records_numpy_version():
    from repro.batch.kernels import numpy_version

    doc = json.loads(to_json(_fake_results(), mode="smoke"))
    assert "numpy" in doc
    assert doc["numpy"] == numpy_version()  # installed version or None


def test_to_json_carries_replay_section():
    replay = {"n": 1000, "speedup": 42.0, "gate": {"ok": True}}
    doc = json.loads(
        to_json(_fake_results(), mode="smoke", jobs=1, replay=replay)
    )
    assert doc["replay"]["speedup"] == 42.0


def test_run_bench_warns_on_oversubscription(monkeypatch):
    monkeypatch.setattr(bench, "bench_grid", lambda mode: [])
    monkeypatch.setattr(bench.os, "cpu_count", lambda: 1)
    monkeypatch.setattr(parallel, "_warned_oversubscribed", False)  # re-arm
    with pytest.warns(RuntimeWarning, match="exceeds cpu_count"):
        run_bench("smoke", jobs=2)


def test_oversubscription_warning_fires_at_most_once_per_process(
    monkeypatch, recwarn
):
    monkeypatch.setattr(bench, "bench_grid", lambda mode: [])
    monkeypatch.setattr(bench.os, "cpu_count", lambda: 1)
    monkeypatch.setattr(parallel, "_warned_oversubscribed", False)  # re-arm
    run_bench("smoke", jobs=2)
    run_bench("smoke", jobs=4)  # second sharded call: same process, silent
    assert (
        len([w for w in recwarn if w.category is RuntimeWarning]) == 1
    )


def test_run_bench_serial_does_not_warn(monkeypatch, recwarn):
    monkeypatch.setattr(bench, "bench_grid", lambda mode: [])
    monkeypatch.setattr(parallel, "_warned_oversubscribed", False)  # re-arm
    run_bench("smoke", jobs=1)
    assert not [w for w in recwarn if w.category is RuntimeWarning]


def test_compare_to_baseline_flags_replay_regression():
    results = _fake_results()
    base = json.loads(to_json(results, mode="smoke"))
    slow = [
        BenchResult(r.case, r.exact_s, r.turbo_s, r.sends, r.replay_s * 2)
        for r in results
    ]
    lines = compare_to_baseline(slow, base, tolerance=0.30)
    assert lines and all("[replay]" in line for line in lines)


def test_compare_to_baseline_skips_pre5_baseline_without_replay():
    results = _fake_results()
    base = json.loads(to_json(results, mode="smoke"))
    base["schema"] = "repro-bench-turbo/4"
    for case in base["cases"]:
        del case["replay_s"], case["replay_speedup"]
    slow = [
        BenchResult(r.case, r.exact_s, r.turbo_s, r.sends, r.replay_s * 10)
        for r in results
    ]
    assert compare_to_baseline(slow, base, tolerance=0.30) == []


def test_run_case_measures_all_three_backends():
    res = run_case(BenchCase("BCAST", 64, 1, _LAM))
    assert res.sends == 63
    assert res.exact_s > 0 and res.turbo_s > 0 and res.replay_s > 0
    assert res.replay_speedup == res.exact_s / res.replay_s


def test_bench_replay_section_shape():
    section = bench_replay(n=256)
    assert section["family"] == "BCAST"
    assert section["sends"] == 255
    assert section["gate"]["min_speedup"] == REPLAY_GATE_MIN_SPEEDUP
    assert section["speedup"] > 1.0
    assert section["replay_s"] < section["exact_s"]


def test_profile_case_writes_pstats_and_table(tmp_path):
    import pstats

    dump = tmp_path / "case.pstats"
    table = profile_case(
        BenchCase("BCAST", 64, 1, _LAM), backend="turbo", out=str(dump)
    )
    assert dump.exists()
    assert "run_protocol" in table
    assert table.startswith("profile: BCAST n=64")
    stats = pstats.Stats(str(dump))  # the dump is a loadable pstats file
    assert stats.total_calls > 0


def test_batch_grid_shape():
    points = batch_grid()
    assert len(points) == 64
    assert {p.family for p in points} == {"BCAST", "PIPELINE-2"}
    assert len({(p.family, p.n, p.m) for p in points}) == 64  # all distinct


def test_bench_batch_section_shape():
    from repro.batch.kernels import kernels_enabled

    section = bench_batch(kernel_n=512)
    assert section["points"] == 64
    assert section["gate"]["min_speedup"] == BATCH_GATE_MIN_SPEEDUP
    assert section["per_point_s"] > 0 and section["batch_s"] > 0
    # speedup is rounded from the *raw* ratio; per_point_s/batch_s are
    # independently rounded to 6dp, so recombining them is only close
    assert section["speedup"] == pytest.approx(
        section["per_point_s"] / section["batch_s"], rel=1e-3
    )
    kernel = section["kernel"]
    assert kernel["n"] == 512
    assert kernel["gate"]["min_speedup"] == BATCH_KERNEL_GATE_MIN_SPEEDUP
    assert kernel["python_s"] > 0
    from repro.batch.kernels import numpy_version

    assert kernel["numpy"] == numpy_version()  # installed version or None
    if kernels_enabled():
        assert kernel["numpy_s"] > 0
    else:
        # no kernels (absent or REPRO_NUMPY=off): vacuous, never a failure
        assert kernel["numpy_s"] is None and kernel["speedup"] is None
        assert kernel["gate"]["ok"] is True
    assert section["gate"]["ok"] == (
        section["gate"]["sweep_ok"] and section["gate"]["kernel_ok"]
    )


def test_to_json_carries_batch_section():
    batch = {"points": 64, "speedup": 9.0, "gate": {"ok": True}}
    doc = json.loads(
        to_json(_fake_results(), mode="smoke", jobs=1, batch=batch)
    )
    assert doc["bench_batch"]["speedup"] == 9.0


def test_to_json_omits_batch_section_when_not_measured():
    doc = json.loads(to_json(_fake_results(), mode="smoke"))
    assert "bench_batch" not in doc
