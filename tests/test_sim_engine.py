"""Tests for the discrete-event engine (repro.sim.engine)."""

from fractions import Fraction

import pytest

from repro.errors import ProcessInterrupt, SimulationError
from repro.sim.engine import Environment


class TestClock:
    def test_starts_at_zero(self):
        assert Environment().now == 0

    def test_custom_start(self):
        assert Environment(initial_time=Fraction(5, 2)).now == Fraction(5, 2)

    def test_exact_fraction_time(self):
        env = Environment()

        def proc():
            yield env.timeout(Fraction(5, 2))
            yield env.timeout(Fraction(1, 3))

        env.process(proc())
        env.run()
        assert env.now == Fraction(5, 2) + Fraction(1, 3)


class TestTimeout:
    def test_fires_at_delay(self):
        env = Environment()
        seen = []

        def proc():
            yield env.timeout(3)
            seen.append(env.now)

        env.process(proc())
        env.run()
        assert seen == [3]

    def test_value_passthrough(self):
        env = Environment()
        got = []

        def proc():
            got.append((yield env.timeout(1, value="hello")))

        env.process(proc())
        env.run()
        assert got == ["hello"]

    def test_negative_delay_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.timeout(-1)

    def test_zero_delay_ok(self):
        env = Environment()

        def proc():
            yield env.timeout(0)

        env.process(proc())
        env.run()
        assert env.now == 0


class TestOrdering:
    def test_fifo_at_same_time(self):
        env = Environment()
        order = []

        def proc(tag):
            yield env.timeout(1)
            order.append(tag)

        for tag in "abc":
            env.process(proc(tag))
        env.run()
        assert order == ["a", "b", "c"]

    def test_chronological(self):
        env = Environment()
        order = []

        def proc(delay, tag):
            yield env.timeout(delay)
            order.append(tag)

        env.process(proc(3, "late"))
        env.process(proc(1, "early"))
        env.process(proc(2, "mid"))
        env.run()
        assert order == ["early", "mid", "late"]

    def test_deterministic_across_runs(self):
        def build():
            env = Environment()
            order = []

            def proc(d, tag):
                yield env.timeout(d)
                order.append((tag, env.now))

            for i in range(20):
                env.process(proc(Fraction(i % 7, 3), i))
            env.run()
            return order

        assert build() == build()


class TestEvents:
    def test_manual_succeed(self):
        env = Environment()
        ev = env.event()
        got = []

        def waiter():
            got.append((yield ev))

        def firer():
            yield env.timeout(2)
            ev.succeed(42)

        env.process(waiter())
        env.process(firer())
        env.run()
        assert got == [42]

    def test_double_trigger_rejected(self):
        env = Environment()
        ev = env.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_value_before_trigger(self):
        ev = Environment().event()
        with pytest.raises(SimulationError):
            _ = ev.value
        with pytest.raises(SimulationError):
            _ = ev.ok

    def test_fail_propagates_to_waiter(self):
        env = Environment()
        ev = env.event()
        caught = []

        def waiter():
            try:
                yield ev
            except ValueError as exc:
                caught.append(str(exc))

        def firer():
            yield env.timeout(1)
            ev.fail(ValueError("boom"))

        env.process(waiter())
        env.process(firer())
        env.run()
        assert caught == ["boom"]

    def test_unwaited_failure_surfaces(self):
        env = Environment()
        ev = env.event()
        ev.fail(RuntimeError("lost"))
        with pytest.raises(RuntimeError, match="lost"):
            env.run()

    def test_defused_failure_silent(self):
        env = Environment()
        ev = env.event()
        ev.fail(RuntimeError("lost"))
        ev.defuse()
        env.run()  # no raise

    def test_fail_requires_exception(self):
        env = Environment()
        with pytest.raises(TypeError):
            env.event().fail("not an exception")

    def test_yield_already_processed_event(self):
        env = Environment()
        ev = env.timeout(0, value="x")
        got = []

        def late_waiter():
            yield env.timeout(5)
            got.append((yield ev))  # ev processed long ago

        env.process(late_waiter())
        env.run()
        assert got == ["x"]


class TestProcess:
    def test_return_value(self):
        env = Environment()

        def child():
            yield env.timeout(1)
            return "result"

        def parent():
            value = yield env.process(child())
            assert value == "result"
            return "done"

        p = env.process(parent())
        assert env.run(until=p) == "done"

    def test_exception_propagates_to_parent(self):
        env = Environment()

        def child():
            yield env.timeout(1)
            raise KeyError("inner")

        def parent():
            try:
                yield env.process(child())
            except KeyError:
                return "caught"
            return "missed"

        p = env.process(parent())
        assert env.run(until=p) == "caught"

    def test_uncaught_process_error_surfaces(self):
        env = Environment()

        def bad():
            yield env.timeout(1)
            raise RuntimeError("unhandled")

        env.process(bad())
        with pytest.raises(RuntimeError, match="unhandled"):
            env.run()

    def test_yield_non_event_is_error(self):
        env = Environment()

        def bad():
            yield 42

        env.process(bad())
        with pytest.raises(SimulationError, match="non-event"):
            env.run()

    def test_is_alive(self):
        env = Environment()

        def proc():
            yield env.timeout(2)

        p = env.process(proc())
        assert p.is_alive
        env.run()
        assert not p.is_alive

    def test_interrupt(self):
        env = Environment()
        log = []

        def sleeper():
            try:
                yield env.timeout(100)
                log.append("overslept")
            except ProcessInterrupt as pi:
                log.append(("interrupted", pi.cause, env.now))

        def interrupter(target):
            yield env.timeout(3)
            target.interrupt(cause="wake up")

        t = env.process(sleeper())
        env.process(interrupter(t))
        env.run()
        assert log == [("interrupted", "wake up", Fraction(3))]

    def test_interrupted_store_waiter_can_withdraw_claim(self):
        """The documented pattern: an interrupted getter cancels its claim
        so a later put is not swallowed by a dead waiter."""
        from repro.sim.resources import Store

        env = Environment()
        store = Store(env)
        got = []

        def impatient():
            claim = store.get()
            try:
                yield claim
                got.append(("impatient", claim.value))
            except ProcessInterrupt:
                store.cancel_get(claim)

        def patient():
            item = yield store.get()
            got.append(("patient", item))

        def driver(target):
            yield env.timeout(1)
            target.interrupt()
            env.process(patient())
            yield env.timeout(1)
            yield store.put("item")

        t = env.process(impatient())
        env.process(driver(t))
        env.run()
        assert got == [("patient", "item")]

    def test_interrupt_dead_process_rejected(self):
        env = Environment()

        def quick():
            yield env.timeout(0)

        p = env.process(quick())
        env.run()
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_needs_generator(self):
        with pytest.raises(TypeError):
            Environment().process(lambda: None)

    def test_active_process_tracking(self):
        env = Environment()
        seen = []

        def proc():
            seen.append(env.active_process)
            yield env.timeout(1)

        p = env.process(proc())
        env.run()
        assert seen == [p]
        assert env.active_process is None


class TestRun:
    def test_until_time_lands_exactly(self):
        env = Environment()

        def proc():
            while True:
                yield env.timeout(1)

        env.process(proc())
        env.run(until=Fraction(7, 2))
        assert env.now == Fraction(7, 2)

    def test_until_event(self):
        env = Environment()
        env.run(until=env.timeout(4, value="v")) == "v"
        assert env.now == 4

    def test_until_past_rejected(self):
        env = Environment()

        def proc():
            yield env.timeout(10)

        env.process(proc())
        env.run(until=5)
        with pytest.raises(SimulationError):
            env.run(until=3)

    def test_until_event_starvation(self):
        env = Environment()
        with pytest.raises(SimulationError, match="ran out of events"):
            env.run(until=env.event())

    def test_step_without_events(self):
        with pytest.raises(SimulationError):
            Environment().step()

    def test_peek(self):
        env = Environment()
        assert env.peek() is None
        env.timeout(5)
        assert env.peek() == 5
