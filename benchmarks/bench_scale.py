"""SCALE — builder scalability: schedules and exact times at large n.

The paper's formulas are exact at any scale; this bench confirms the
implementation keeps up — the `F_lambda` table, the BCAST builder, and
validation all stay near-linear in `n`, and `f_lambda` handles
astronomically large `n` through the doubling table.
"""

from fractions import Fraction

from repro.core.bcast import bcast_events, bcast_schedule
from repro.core.fibfunc import GeneralizedFibonacci, postal_f

from benchmarks._utils import emit


def test_bcast_builder_100k(benchmark):
    events = benchmark(bcast_events, 100_000, Fraction(5, 2))
    assert len(events) == 99_999


def test_bcast_validation_10k(benchmark):
    sched = benchmark(bcast_schedule, 10_000, Fraction(5, 2))
    assert sched.completion_time() == postal_f(Fraction(5, 2), 10_000)


def test_f_lambda_astronomical_n(benchmark):
    def compute():
        fib = GeneralizedFibonacci(Fraction(7, 2))
        return fib.index(10**30)

    t = benchmark(compute)
    fib = GeneralizedFibonacci(Fraction(7, 2))
    assert fib.value_at(t) >= 10**30
    assert fib.value_at(t - Fraction(1, 7)) < 10**30
    emit(
        "Scale: f_{7/2}(10^30)",
        f"= {t} (exact Fraction; table built by doubling)",
    )


def test_f_lambda_large_lambda(benchmark):
    result = benchmark(postal_f, 5000, 10**9)
    assert result > 0
