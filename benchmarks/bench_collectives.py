"""EXT — collectives and Section-5 extensions: reduction optimality,
gossip gap (the paper's open problem), hierarchy gains, adaptive-latency
gains, and the LogP identity."""

from fractions import Fraction

from repro.collectives.allgather import AllgatherProtocol, allgather_time
from repro.collectives.gossip import (
    GossipRingProtocol,
    gossip_lower_bound,
    gossip_ring_time,
)
from repro.collectives.reduce import ReduceProtocol, reduce_time
from repro.core.fibfunc import postal_f
from repro.extensions.adaptive import (
    LatencyProfile,
    adaptive_bcast_time,
    static_tree_under_profile,
)
from repro.extensions.hierarchical import (
    HierarchicalSystem,
    flat_bcast_time,
    hierarchical_bcast_time,
)
from repro.extensions.logp import LogPParams, logp_bcast_time, postal_lambda_of
from repro.postal import run_protocol
from repro.report.tables import format_table

from benchmarks._utils import emit


def test_reduce_is_broadcast_reversed(benchmark):
    def run():
        rows = []
        for lam in (Fraction(1), Fraction(5, 2), Fraction(6)):
            for n in (8, 32):
                res = run_protocol(ReduceProtocol(n, lam))
                assert res.completion_time == reduce_time(n, lam) == postal_f(lam, n)
                rows.append([lam, n, res.completion_time])
        return rows

    rows = benchmark(run)
    emit(
        "Combining (ref [6]): optimal reduction == f_lambda(n)",
        format_table(["lambda", "n", "reduce time"], rows),
    )


def test_gossip_gap_open_problem(benchmark):
    from repro.collectives.bruck import bruck_time

    def run():
        rows = []
        for lam in (Fraction(1), Fraction(5, 2), Fraction(10)):
            for n in (8, 16):
                ring = gossip_ring_time(n, lam)
                tree = allgather_time(n, lam)
                bruck = bruck_time(n, lam)
                lb = gossip_lower_bound(n, lam)
                rows.append([lam, n, lb, ring, tree, bruck])
                assert min(ring, tree, bruck) >= lb
                # Bruck dominates the ring whenever lambda > 1
                if lam > 1:
                    assert bruck < ring
        return rows

    rows = benchmark(run)
    emit(
        "Gossip (open problem, Section 5): ring vs gather+pipeline vs "
        "Bruck vs LB",
        format_table(
            ["lambda", "n", "LB", "ring", "gather+pipeline", "Bruck"], rows
        ),
    )


def test_allgather_simulated(benchmark):
    def run():
        proto = AllgatherProtocol(16, Fraction(5, 2))
        res = run_protocol(proto)
        assert res.completion_time == allgather_time(16, Fraction(5, 2))
        assert all(len(k) == 16 for k in proto.known.values())
        return res.completion_time

    benchmark(run)


def test_gossip_ring_simulated(benchmark):
    def run():
        proto = GossipRingProtocol(16, Fraction(5, 2))
        res = run_protocol(proto)
        assert res.completion_time == gossip_ring_time(16, Fraction(5, 2))
        return res.completion_time

    benchmark(run)


def test_hierarchy_gain(benchmark):
    def run():
        rows = []
        for k, c, ll, lg in ((8, 32, 1, 12), (16, 16, 2, 8), (4, 64, 1, 30)):
            sys_ = HierarchicalSystem.of(k, c, ll, lg)
            hier = hierarchical_bcast_time(sys_)
            seq = hierarchical_bcast_time(sys_, overlap=False)
            flat = flat_bcast_time(sys_)
            assert hier <= seq
            assert hier < flat
            rows.append([k, c, ll, lg, flat, seq, hier])
        return rows

    rows = benchmark(run)
    emit(
        "Section 5 extension: hierarchical latency broadcast",
        format_table(
            ["k", "c", "lam_loc", "lam_glob", "flat", "two-phase", "overlapped"],
            rows,
        ),
    )


def test_adaptive_gain(benchmark):
    def run():
        rows = []
        n = 64
        for true_lam in (2, 4, 8):
            profile = LatencyProfile.constant(true_lam)
            eager = adaptive_bcast_time(n, profile)
            misplanned = static_tree_under_profile(n, 1, profile)
            assert eager == postal_f(true_lam, n)
            assert misplanned >= eager
            rows.append([true_lam, eager, misplanned])
        return rows

    rows = benchmark(run)
    emit(
        "Section 5 extension: adaptive (eager) vs tree planned for lambda=1",
        format_table(["true lambda", "eager (optimal)", "misplanned tree"], rows),
    )


def test_logp_identity(benchmark):
    def run():
        rows = []
        for L in (0, 2, 6):
            for P in (16, 64):
                params = LogPParams.of(L, 1, 1, P)
                t_logp = logp_bcast_time(params)
                lam = postal_lambda_of(params)
                t_postal = postal_f(lam, P)
                assert t_logp == t_postal
                rows.append([L, P, lam, t_logp])
        return rows

    rows = benchmark(run)
    emit(
        "LogP correspondence (g=o): optimal LogP broadcast == f_{(L+2o)/o}(P)",
        format_table(["L", "P", "postal lambda", "time"], rows),
    )
