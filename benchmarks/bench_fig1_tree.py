"""FIG1 — Figure 1 of the paper: the generalized Fibonacci broadcast tree
for MPS(14, 2.5), height 7.5, root's first send to p9.

Regenerates the tree (both by the static builder and by full event-driven
simulation), asserts the paper's annotations, and prints the ASCII
rendering.
"""

from fractions import Fraction

from repro.algorithms import BcastProtocol
from repro.core.bcast import bcast_schedule, bcast_tree
from repro.core.fibfunc import postal_f
from repro.postal import run_protocol
from repro.report.render import render_gantt, render_tree

from benchmarks._utils import emit

LAM = Fraction(5, 2)
N = 14


def test_fig1_builder(benchmark):
    tree = benchmark(bcast_tree, N, LAM)
    assert tree.height() == Fraction(15, 2)
    assert tree.children_of(0)[0] == 9
    assert tree.node(9).informed_at == Fraction(5, 2)
    # p9's subtree is exactly p9..p13, as drawn in the figure
    covered, stack = set(), [9]
    while stack:
        p = stack.pop()
        covered.add(p)
        stack.extend(tree.children_of(p))
    assert covered == {9, 10, 11, 12, 13}
    emit("Figure 1: generalized Fibonacci tree, MPS(14, 5/2)", render_tree(tree))
    emit(
        "Figure 1 timeline (S=send unit, R=receive unit)",
        render_gantt(bcast_schedule(N, LAM, validate=False)),
    )


def test_fig1_simulated(benchmark):
    res = benchmark(run_protocol, BcastProtocol(N, LAM))
    assert res.completion_time == postal_f(LAM, N) == Fraction(15, 2)
    assert res.sends == N - 1
