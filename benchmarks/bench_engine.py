"""ENG — substrate sanity: discrete-event engine throughput, plus the
Fraction-vs-float clock ablation called out in DESIGN.md.

Not a paper artifact; establishes that the exact-arithmetic choice costs a
tolerable constant factor while buying equality-grade reproduction.
"""

from fractions import Fraction

from repro.algorithms import BcastProtocol
from repro.postal import run_protocol
from repro.sim.engine import Environment

from benchmarks._utils import emit


def _pingpong(rounds, dt):
    env = Environment()

    def proc():
        for _ in range(rounds):
            yield env.timeout(dt)

    env.process(proc())
    env.run()
    return env.now


def test_timeout_throughput_fraction(benchmark):
    result = benchmark(_pingpong, 2000, Fraction(5, 2))
    assert result == 5000


def test_timeout_throughput_float_ablation(benchmark):
    """Ablation: the same workload with float delays (the engine converts
    them to exact Fractions; this measures the conversion overhead for
    dyadic values)."""
    result = benchmark(_pingpong, 2000, 2.5)
    assert result == 5000


def test_resource_contention_throughput(benchmark):
    from repro.sim.resources import Resource

    def run():
        env = Environment()
        res = Resource(env, capacity=2)

        def user():
            for _ in range(50):
                req = res.request()
                yield req
                yield env.timeout(1)
                res.release(req)

        for _ in range(20):
            env.process(user())
        env.run()
        return env.now

    assert benchmark(run) == 500


def test_full_broadcast_simulation_throughput(benchmark):
    """End-to-end cost of simulating a 256-processor BCAST (255 sends,
    ports, tracing, validation)."""
    res = benchmark(run_protocol, BcastProtocol(256, Fraction(5, 2)))
    assert res.sends == 255


def test_event_fanout(benchmark):
    """Many processes woken by one event at the same instant."""

    def run():
        env = Environment()
        gate = env.event()
        done = []

        def waiter():
            yield gate
            done.append(env.now)

        for _ in range(500):
            env.process(waiter())

        def opener():
            yield env.timeout(3)
            gate.succeed()

        env.process(opener())
        env.run()
        return len(done)

    assert benchmark(run) == 500
