"""Benchmark-harness helpers.

Every bench prints the paper-artifact table it regenerates (visible with
``pytest benchmarks/ --benchmark-only -s``) and times the underlying
computation through the ``benchmark`` fixture, so ``--benchmark-only``
runs double as the reproduction harness.
"""

import pytest


def emit(title: str, body: str) -> None:
    """Print a labelled artifact block (shown with -s)."""
    print(f"\n=== {title} ===")
    print(body)
