"""XOVER — the Section 4 narrative as a crossover map: which algorithm
family is fastest at each (n, m, lambda).

The paper's qualitative claims that must hold in the map:
* m = 1: PIPELINE (== BCAST) is optimal everywhere;
* growing m with fixed (n, lambda): the winner drifts toward
  PIPELINE / DTREE-LINE;
* growing lambda with small m: PACK / star-like trees become competitive.
"""

from fractions import Fraction

from repro.core.analysis import algorithm_times, best_algorithm, bcast_time
from repro.report.tables import format_table

from benchmarks._utils import emit

LAMBDAS = [Fraction(1), Fraction(5, 2), Fraction(8), Fraction(32)]
NS = [8, 32]
MS = [1, 4, 16, 64, 256]


def _map_rows():
    rows = []
    for lam in LAMBDAS:
        for n in NS:
            for m in MS:
                name, t = best_algorithm(n, m, lam)
                rows.append([lam, n, m, name, t])
    return rows


def test_crossover_map(benchmark):
    rows = benchmark(_map_rows)
    emit(
        "Crossover map: fastest family per (lambda, n, m)",
        format_table(["lambda", "n", "m", "winner", "time"], rows),
    )
    # m=1 winner always achieves the optimal f_lambda(n)
    for lam in LAMBDAS:
        for n in NS:
            _, t = best_algorithm(n, 1, lam)
            assert t == bcast_time(n, lam)
    # large m: a pipelining family wins (LINE / PIPELINE; the binary tree
    # can still hold on at very high lambda until m grows further)
    for lam in LAMBDAS:
        for n in NS:
            name, _ = best_algorithm(n, 256, lam)
            assert name in ("DTREE-LINE", "PIPELINE", "DTREE-BINARY"), (lam, n, name)
    # asymptotic m with n, lambda fixed: the line is near-optimal and wins
    name, t = best_algorithm(6, 5000, Fraction(5, 2))
    assert name in ("DTREE-LINE", "PIPELINE")
    from repro.core.analysis import multi_lower_bound

    assert float(t) / float(multi_lower_bound(6, 5000, Fraction(5, 2))) < 1.02


def test_phase_diagram(benchmark):
    from repro.report.phase import phase_diagram

    text = benchmark(
        phase_diagram,
        16,
        [1, 4, 16, 64],
        [Fraction(1), Fraction(5, 2), Fraction(8)],
    )
    emit("Winner phase diagram, n=16", text)
    assert "legend:" in text


def test_family_times_full_grid(benchmark):
    def compute():
        return [
            algorithm_times(n, m, lam)
            for lam in LAMBDAS
            for n in NS
            for m in (1, 16, 256)
        ]

    tables = benchmark(compute)
    assert len(tables) == len(LAMBDAS) * len(NS) * 3
