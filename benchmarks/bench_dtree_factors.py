"""S43 — Section 4.3's approximation-factor claims for Algorithm DTREE.

* line (d=1): ratio -> 1 as m -> infinity (lambda, n fixed);
* star (d=n-1): ratio -> 1 as lambda -> infinity (n, m fixed);
* binary (d=2): within max{2, log(ceil(lambda)+1)} of optimal;
* d = ceil(lambda)+1: within max{2, ceil(lambda)+1}; within 3 when
  m <= log n / log(ceil(lambda)+1);
* best-of-the-family is within the factor 7 of [13] over a broad grid.
"""

import math
from fractions import Fraction

from repro.core.analysis import (
    dtree_factor_binary,
    dtree_factor_latency,
    multi_lower_bound,
)
from repro.core.dtree import DTreeShape, dtree_schedule, resolve_degree
from repro.report.tables import format_table

from benchmarks._utils import emit


def _ratio(n, m, lam, d):
    t = dtree_schedule(n, m, lam, d, validate=False).completion_time()
    return float(t) / float(multi_lower_bound(n, m, lam))


def test_line_ratio_tends_to_one(benchmark):
    def rows():
        out = []
        n, lam = 6, Fraction(5, 2)
        for m in (1, 10, 100, 1000):
            out.append([m, _ratio(n, m, lam, 1)])
        return out

    table = benchmark(rows)
    emit(
        "S4.3: line (d=1) ratio vs m (n=6, lambda=5/2) — tends to 1",
        format_table(["m", "line/LB"], table),
    )
    ratios = [r for _, r in table]
    assert all(a >= b for a, b in zip(ratios, ratios[1:]))
    assert ratios[-1] < 1.05


def test_star_ratio_tends_to_one(benchmark):
    def rows():
        out = []
        n, m = 6, 3
        for lam in (1, 10, 100, 1000):
            out.append([lam, _ratio(n, m, Fraction(lam), n - 1)])
        return out

    table = benchmark(rows)
    emit(
        "S4.3: star (d=n-1) ratio vs lambda (n=6, m=3) — tends to 1",
        format_table(["lambda", "star/LB"], table),
    )
    ratios = [r for _, r in table]
    assert ratios[-1] < 1.05


def test_binary_and_latency_factors(benchmark):
    def rows():
        out = []
        for lam in (Fraction(1), Fraction(5, 2), Fraction(8), Fraction(20)):
            worst2 = worstL = 0.0
            for n in (8, 64, 256):
                for m in (1, 4, 16):
                    worst2 = max(worst2, _ratio(n, m, lam, 2))
                    dl = resolve_degree(DTreeShape.LATENCY, n, lam)
                    worstL = max(worstL, _ratio(n, m, lam, dl))
            out.append(
                [lam, worst2, dtree_factor_binary(lam), worstL,
                 dtree_factor_latency(lam)]
            )
            assert worst2 <= dtree_factor_binary(lam) * (1 + 1e-9)
            assert worstL <= dtree_factor_latency(lam) * (1 + 1e-9)
        return out

    table = benchmark(rows)
    emit(
        "S4.3: observed worst ratios vs the paper's stated factors",
        format_table(
            ["lambda", "binary worst", "max{2,log(ceil+1)}",
             "latency-d worst", "max{2,ceil(lam)+1}"],
            table,
        ),
    )


def test_factor3_for_few_messages(benchmark):
    def check():
        worst = 0.0
        for lam in (Fraction(2), Fraction(5, 2), Fraction(8)):
            for n in (64, 256, 1024):
                mmax = int(math.log2(n) / math.log2(math.ceil(lam) + 1))
                for m in sorted({1, mmax // 2, mmax} - {0}):
                    dl = resolve_degree(DTreeShape.LATENCY, n, lam)
                    worst = max(worst, _ratio(n, m, lam, dl))
        assert worst <= 3 * (1 + 1e-9)
        return worst

    worst = benchmark(check)
    emit(
        "S4.3: d=ceil(lambda)+1 with m <= log n/log(ceil(lambda)+1)",
        f"worst observed ratio = {worst:.3f}  (claimed <= 3)",
    )


def test_factor7_best_of_family(benchmark):
    def check():
        worst = (0.0, None)
        for lam in (Fraction(1), Fraction(5, 2), Fraction(8), Fraction(32)):
            for n in (4, 16, 64, 256):
                for m in (1, 4, 16, 64, 256):
                    lb = float(multi_lower_bound(n, m, lam))
                    degrees = {1, 2, math.ceil(lam) + 1, n - 1}
                    best = min(
                        _ratio(n, m, lam, max(1, min(d, n - 1)))
                        for d in degrees
                    )
                    if best > worst[0]:
                        worst = (best, (lam, n, m))
        assert worst[0] <= 7
        return worst

    worst, at = benchmark(check)
    emit(
        "S4.3 / [13]: best fixed-d DTREE vs Lemma 8 over the whole grid",
        f"worst best-of-family ratio = {worst:.3f} at (lambda, n, m) = {at} "
        "(claimed <= 7)",
    )
