"""LB — Lemma 8 and Corollary 9: lower bounds for broadcasting m messages.

Prints the bound table over an (n, m, lambda) grid and verifies that both
Corollary 9 forms are implied by Lemma 8 and respected by every algorithm
family.
"""

from fractions import Fraction

from repro.core.analysis import (
    algorithm_times,
    multi_lower_bound,
    multi_lower_cor9,
)
from repro.report.tables import format_table

from benchmarks._utils import emit

GRID = [
    (n, m, lam)
    for lam in (Fraction(1), Fraction(5, 2), Fraction(8))
    for n in (4, 16, 64)
    for m in (1, 4, 16)
]


def _table():
    rows = []
    for n, m, lam in GRID:
        lb = multi_lower_bound(n, m, lam)
        c9a, c9b = multi_lower_cor9(n, m, lam)
        assert c9a <= float(lb) + 1e-9
        rows.append([lam, n, m, lb, c9a, c9b])
    return rows


def test_lower_bound_table(benchmark):
    rows = benchmark(_table)
    emit(
        "Lemma 8 & Corollary 9 lower bounds",
        format_table(
            ["lambda", "n", "m", "Lemma8", "Cor9(1)", "Cor9(2)"], rows
        ),
    )


def test_no_family_beats_lemma8(benchmark):
    def check():
        for n, m, lam in GRID:
            lb = multi_lower_bound(n, m, lam)
            for name, t in algorithm_times(n, m, lam).items():
                assert t >= lb, (name, n, m, lam)
        return True

    assert benchmark(check)
