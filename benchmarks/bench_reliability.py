"""Ablations — reliability under message loss, and greedy-vs-paced REPEAT.

1. The optimal BCAST tree hardened with pipelined ACKs: lossless overhead
   vs ``f_lambda(n)`` (one send unit per tree level), and the degradation
   curve as the drop rate grows.
2. The REPEAT sharpening: the paper's literal rule (root restarts the
   moment its port idles) vs the Lemma 10 pacing the analysis assumes.
"""

from fractions import Fraction

from repro.algorithms import RepeatProtocol
from repro.core.analysis import repeat_time
from repro.core.bcast import bcast_tree
from repro.core.fibfunc import postal_f
from repro.extensions.faulty import run_reliable_bcast
from repro.postal import run_protocol
from repro.report.tables import format_table

from benchmarks._utils import emit


def test_reliable_bcast_degradation(benchmark):
    def run():
        rows = []
        n, lam = 32, Fraction(5, 2)
        f = postal_f(lam, n)
        depth = max(bcast_tree(n, lam).depth_of(p) for p in range(n))
        for loss in (0.0, 0.1, 0.25, 0.5):
            # average a few seeds for the lossy cells
            seeds = (0,) if loss == 0 else tuple(range(5))
            results = [
                run_reliable_bcast(n, lam, loss=loss, seed=s) for s in seeds
            ]
            avg_t = sum(float(t) for t, _, _ in results) / len(results)
            avg_rtx = sum(r for _, r, _ in results) / len(results)
            rows.append([loss, avg_t, avg_rtx])
            if loss == 0:
                t0 = results[0][0]
                assert f <= t0 <= f + depth
        return rows, f

    rows, f = benchmark(run)
    emit(
        "Reliability ablation: pipelined-ACK BCAST on a lossy MPS(32, 5/2) "
        f"(loss-free optimum f = {f})",
        format_table(["loss", "avg completion", "avg retransmissions"], rows),
    )


def test_repeat_greedy_vs_paced(benchmark):
    def run():
        rows = []
        for lam in (Fraction(2), Fraction(5, 2), Fraction(4)):
            for n in (5, 9, 14, 23):
                m = 4
                paced = repeat_time(n, m, lam)
                greedy = run_protocol(
                    RepeatProtocol(n, m, lam, greedy=True)
                ).completion_time
                assert greedy <= paced
                rows.append([lam, n, m, paced, greedy, paced - greedy])
        return rows

    rows = benchmark(run)
    emit(
        "REPEAT ablation: Lemma 10 pacing vs greedy root restart "
        "(greedy certified collision-free by strict-mode simulation)",
        format_table(
            ["lambda", "n", "m", "paced (Lemma 10)", "greedy", "saved"], rows
        ),
    )
    assert any(row[5] > 0 for row in rows)  # the sharpening is real
