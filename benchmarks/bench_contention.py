"""Ablation — strict vs queued receive-port contention policies.

The paper's model assumes algorithms never collide (strict mode enforces
it); the queued policy models a NIC input queue.  For the paper's
algorithms the two must coincide exactly (they are collision-free); for
the deliberately colliding eager reduction, queueing absorbs the collision
at a measurable cost.
"""

from fractions import Fraction

from repro.algorithms import BcastProtocol, PipelineProtocol
from repro.collectives.reduce import ReduceProtocol, reduce_time
from repro.postal import ContentionPolicy, run_protocol

from benchmarks._utils import emit


def test_paper_algorithms_identical_under_both_policies(benchmark):
    def check():
        out = []
        for lam in (Fraction(1), Fraction(5, 2)):
            for proto_cls, args in (
                (BcastProtocol, (40, lam)),
                (PipelineProtocol, (20, 5, lam)),
            ):
                strict = run_protocol(
                    proto_cls(*args), policy=ContentionPolicy.STRICT
                ).completion_time
                queued = run_protocol(
                    proto_cls(*args), policy=ContentionPolicy.QUEUED
                ).completion_time
                assert strict == queued
                out.append(strict)
        return out

    benchmark(check)


def test_eager_reduce_queued_cost(benchmark):
    """Eager reduction collides at plateaus; the queue absorbs it.  The
    queued completion can exceed the paced optimum — the measured price of
    skipping the pacing analysis."""

    def run():
        results = []
        for n, lam in ((3, Fraction(5, 2)), (9, Fraction(5, 2)), (14, 3)):
            proto = ReduceProtocol(n, lam, eager=True)
            res = run_protocol(proto, policy=ContentionPolicy.QUEUED)
            results.append((n, lam, res.completion_time, reduce_time(n, lam)))
            assert res.completion_time >= reduce_time(n, lam)
        return results

    rows = benchmark(run)
    emit(
        "Ablation: eager reduction under the queued policy vs optimum",
        "\n".join(
            f"n={n} lambda={lam}: eager-queued={t} vs optimal={opt}"
            for n, lam, t, opt in rows
        ),
    )
