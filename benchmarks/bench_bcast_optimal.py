"""THM6 — Theorem 6: Algorithm BCAST runs in exactly f_lambda(n) and is
optimal.

Three independent computations must agree at every grid point:
the BCAST schedule's completion time, f_lambda(n), and the split dynamic
program (which never touches F_lambda).  The latency-oblivious binomial
tree is included to show the gap BCAST closes.
"""

from fractions import Fraction

from repro.algorithms.baselines import binomial_schedule
from repro.core.bcast import bcast_schedule
from repro.core.fibfunc import postal_f
from repro.core.optimal import opt_broadcast_time
from repro.report.tables import format_table

from benchmarks._utils import emit

LAMBDAS = [Fraction(1), Fraction(2), Fraction(5, 2), Fraction(5), Fraction(10)]
NS = [2, 4, 8, 16, 64, 256, 1024, 4096]


def _table():
    rows = []
    for lam in LAMBDAS:
        for n in NS:
            t_bcast = bcast_schedule(n, lam, validate=False).completion_time()
            t_f = postal_f(lam, n)
            t_binom = binomial_schedule(n, lam, validate=False).completion_time()
            assert t_bcast == t_f
            rows.append(
                [lam, n, t_bcast, t_binom, f"{float(t_binom / t_bcast):.3f}x"]
            )
    return rows


def test_bcast_equals_f_and_beats_binomial(benchmark):
    rows = benchmark(_table)
    emit(
        "Theorem 6: T_B(n, lambda) = f_lambda(n); binomial tree for contrast",
        format_table(
            ["lambda", "n", "BCAST=f_lambda(n)", "binomial", "binom/opt"], rows
        ),
    )
    # the binomial tree is never better, and strictly worse somewhere for
    # every lambda > 1
    for lam in LAMBDAS:
        ratios = [
            binomial_schedule(n, lam, validate=False).completion_time()
            / postal_f(lam, n)
            for n in NS
        ]
        assert all(r >= 1 for r in ratios)
        if lam > 1:
            assert any(r > 1 for r in ratios)


def test_brute_force_optimality(benchmark):
    def check():
        for lam in LAMBDAS:
            for n in range(1, 31):
                assert opt_broadcast_time(n, lam) == postal_f(lam, n)
        return True

    assert benchmark(check)
