"""L18 — Algorithm DTREE: simulated times vs the Lemma 18 bound for the
paper's named degrees (line, binary, latency-matched, star)."""

from fractions import Fraction

from repro.core.analysis import dtree_upper, multi_lower_bound
from repro.core.dtree import DTreeShape, dtree_schedule, resolve_degree
from repro.report.tables import format_table

from benchmarks._utils import emit

GRID = [
    (n, m, lam)
    for lam in (Fraction(1), Fraction(5, 2), Fraction(8))
    for n in (16, 64)
    for m in (1, 8, 32)
]
SHAPES = [DTreeShape.LINE, DTreeShape.BINARY, DTreeShape.LATENCY, DTreeShape.STAR]


def _table():
    rows = []
    for n, m, lam in GRID:
        row = [lam, n, m, multi_lower_bound(n, m, lam)]
        for shape in SHAPES:
            d = resolve_degree(shape, n, lam)
            t = dtree_schedule(n, m, lam, d, validate=False).completion_time()
            assert t <= dtree_upper(n, m, lam, d), (shape, n, m, lam)
            row.append(t)
        rows.append(row)
    return rows


def test_dtree_times_and_lemma18(benchmark):
    rows = benchmark(_table)
    emit(
        "Lemma 18 / Section 4.3: DTREE completion times by degree "
        "(all <= d(m-1) + (d-1+lambda)ceil(log_d n))",
        format_table(
            ["lambda", "n", "m", "Lemma8 LB", "d=1 line", "d=2 binary",
             "d=ceil(lam)+1", "d=n-1 star"],
            rows,
        ),
    )


def test_dtree_bound_check_sweep(benchmark):
    def check():
        for n, m, lam in GRID:
            for d in (1, 2, 3, 5, 9, n - 1):
                d = max(1, min(d, n - 1))
                t = dtree_schedule(n, m, lam, d, validate=False).completion_time()
                assert t <= dtree_upper(n, m, lam, d)
        return True

    assert benchmark(check)
