"""THM7 — Theorem 7: bounds on F_lambda(t) and f_lambda(n).

Prints the sandwich tables for parts (1)-(2) over a (lambda, t/n) grid and
checks the large-lambda asymptotic parts (3)-(4) with their technical
Claims 23-24.
"""

from fractions import Fraction

from repro.core.bounds import (
    F_lower_asymptotic,
    F_lower_exact,
    F_upper_exact,
    claim23_lhs,
    claim24_holds,
    f_lower_log,
    f_upper_asymptotic,
    f_upper_log,
)
from repro.core.fibfunc import postal_F, postal_f
from repro.report.tables import format_table

from benchmarks._utils import emit

LAMBDAS = [Fraction(1), Fraction(5, 2), Fraction(4), Fraction(10)]


def _part1_rows():
    rows = []
    for lam in LAMBDAS:
        for t in (0, 2, 5, 10, 20, 40):
            t = Fraction(t)
            lo, F, hi = (
                F_lower_exact(lam, t),
                postal_F(lam, t),
                F_upper_exact(lam, t),
            )
            assert lo <= F <= hi
            rows.append([lam, t, lo, F, hi])
    return rows


def _part2_rows():
    rows = []
    for lam in LAMBDAS:
        for n in (2, 14, 100, 10**4, 10**8):
            lo, f, hi = (
                f_lower_log(lam, n),
                float(postal_f(lam, n)),
                f_upper_log(lam, n),
            )
            assert lo - 1e-9 <= f <= hi + 1e-9
            rows.append([lam, n, lo, f, hi])
    return rows


def test_part1_F_sandwich(benchmark):
    rows = benchmark(_part1_rows)
    emit(
        "Theorem 7(1): (ceil(lam)+1)^(t/2lam) <= F_lam(t) <= (ceil(lam)+1)^(t/lam)",
        format_table(["lambda", "t", "lower", "F_lambda(t)", "upper"], rows),
    )


def test_part2_f_sandwich(benchmark):
    rows = benchmark(_part2_rows)
    emit(
        "Theorem 7(2): lam*log(n)/log(ceil(lam)+1) <= f_lam(n) <= 2lam + 2lam*log(n)/log(ceil(lam)+1)",
        format_table(["lambda", "n", "lower", "f_lambda(n)", "upper"], rows),
    )


def test_parts3_4_asymptotics(benchmark):
    def check():
        rows = []
        for lam in (128, 512, 2048):
            assert claim23_lhs(lam) <= 1
            assert claim24_holds(lam)
            for t in (0, lam, 4 * lam, 10 * lam):
                assert postal_F(lam, t) >= F_lower_asymptotic(lam, t) * (1 - 1e-9)
            n = 2**64
            f = float(postal_f(lam, n))
            ub = f_upper_asymptotic(lam, n)
            rows.append([lam, n, f, ub])
            assert f <= ub + 1e-6
        return rows

    rows = benchmark(check)
    emit(
        "Theorem 7(3)-(4): large-lambda asymptotics (n = 2^64)",
        format_table(["lambda", "n", "f_lambda(n)", "(1+h)*lam*log n/log(lam+1)"], rows),
    )
