"""L10/L12/L14/L16 — the multi-message algorithms of Section 4.2.

For every (n, m, lambda) cell: the full event-driven simulation of
REPEAT / PACK / PIPELINE must equal the paper's closed form *exactly*, and
all must respect the Lemma 8 lower bound.  Prints the comparison table the
paper's Section 4.2 narrates.
"""

from fractions import Fraction

from repro.algorithms import PackProtocol, PipelineProtocol, RepeatProtocol
from repro.core.analysis import (
    multi_lower_bound,
    pack_time,
    pipeline_time,
    repeat_time,
)
from repro.core.multi import pipeline_variant
from repro.postal import run_protocol
from repro.report.tables import format_table

from benchmarks._utils import emit

GRID = [
    (n, m, lam)
    for lam in (Fraction(1), Fraction(5, 2), Fraction(6))
    for n in (8, 32)
    for m in (1, 2, 8, 32)
]


def _row(n, m, lam):
    tr = run_protocol(RepeatProtocol(n, m, lam)).completion_time
    tp = run_protocol(PackProtocol(n, m, lam)).completion_time
    tl = run_protocol(PipelineProtocol(n, m, lam)).completion_time
    assert tr == repeat_time(n, m, lam)
    assert tp == pack_time(n, m, lam)
    assert tl == pipeline_time(n, m, lam)
    lb = multi_lower_bound(n, m, lam)
    assert min(tr, tp, tl) >= lb
    return [lam, n, m, lb, tr, tp, tl, pipeline_variant(m, lam)]


def _table():
    return [_row(n, m, lam) for (n, m, lam) in GRID]


def test_simulation_matches_lemmas_10_12_14_16(benchmark):
    rows = benchmark(_table)
    emit(
        "Section 4.2: simulated == closed form (REPEAT: Lemma 10, "
        "PACK: Lemma 12, PIPELINE: Lemmas 14/16); LB = Lemma 8",
        format_table(
            ["lambda", "n", "m", "LB", "REPEAT", "PACK", "PIPELINE", "variant"],
            rows,
        ),
    )


def test_shape_pipeline_dominates_for_large_m(benchmark):
    """The Section 4.2 narrative: REPEAT degrades linearly in m; PIPELINE
    wins for large m; PACK sits between for small m / large lambda."""

    def check():
        n = 32
        for lam in (Fraction(5, 2), Fraction(6)):
            assert pipeline_time(n, 64, lam) < pack_time(n, 64, lam)
            assert pipeline_time(n, 64, lam) < repeat_time(n, 64, lam)
            # PACK close to optimal for small m, large lambda
            m = 2
            lam_big = Fraction(40)
            assert pack_time(n, m, lam_big) <= Fraction(3, 2) * multi_lower_bound(
                n, m, lam_big
            )
        return True

    assert benchmark(check)
