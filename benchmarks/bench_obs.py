"""OBS — observability-layer overhead and artifacts.

Quantifies what the tentpole costs and produces: (1) live metrics
collection must be a small tax on a full protocol simulation (it is one
dict update per trace record); (2) Chrome-trace export is linear in the
record count; (3) the critical-path walk over a builder schedule is
linear in the send count.  The printed artifacts (``-s``) are the
utilization table and critical path for the README example.
"""

from fractions import Fraction

from repro.algorithms import PipelineProtocol
from repro.core.multi import pipeline_schedule
from repro.obs import chrome_trace, collect_metrics, critical_path
from repro.postal import run_protocol
from repro.report.tables import utilization_table

from benchmarks._utils import emit


LAM = Fraction(3)


def test_metrics_collection_overhead(benchmark):
    """Full 64-processor, 8-message PIPELINE simulation with the live
    collector attached (the run_protocol default)."""
    res = benchmark(run_protocol, PipelineProtocol(64, 8, LAM), collect=True)
    assert res.metrics is not None
    assert res.metrics.total_sends == res.sends == 504
    emit(
        "OBS utilization (PIPELINE n=64 m=8 lambda=3)",
        utilization_table(res.metrics),
    )


def test_simulation_without_collection_baseline(benchmark):
    """The same simulation with collection disabled — the baseline the
    overhead is measured against."""
    res = benchmark(run_protocol, PipelineProtocol(64, 8, LAM), collect=False)
    assert res.metrics is None
    assert res.sends == 504


def test_posthoc_metrics_replay(benchmark):
    """Folding a finished 504-send trace through a fresh collector."""
    res = run_protocol(PipelineProtocol(64, 8, LAM), collect=False)
    metrics = benchmark(collect_metrics, res.system)
    assert metrics.total_deliveries == 504
    assert metrics.makespan == res.completion_time


def test_chrome_export_throughput(benchmark):
    """Rendering the trace-event dict for a ~1500-record run."""
    res = run_protocol(PipelineProtocol(64, 8, LAM), collect=False)
    doc = benchmark(chrome_trace, res.system)
    sends = [
        e for e in doc["traceEvents"] if e.get("cat") == "send" and e["ph"] == "X"
    ]
    assert len(sends) == 504


def test_critical_path_walk(benchmark):
    """Zero-slack walk over a large builder schedule (no simulation)."""
    sched = pipeline_schedule(512, 16, LAM, validate=False)
    path = benchmark(critical_path, sched)
    assert path.length == sched.completion_time()
    assert path.tight
    emit(
        "OBS critical path length (PIPELINE n=512 m=16 lambda=3)",
        f"{len(path.events)} sends, length {path.length}",
    )


def test_engine_profiler_overhead(benchmark):
    """The instrumented env.step vs the plain one (per-step tax)."""
    res = benchmark(
        run_protocol, PipelineProtocol(32, 4, LAM), collect=False, profile=True
    )
    assert res.profile is not None
    assert res.profile.events_processed > 0
    assert res.profile.heap_peak >= 1
    emit("OBS engine profile (PIPELINE n=32 m=4 lambda=3)", str(res.profile))
