#!/usr/bin/env python3
"""Broadcasting when the mail can get lost.

The postal model assumes perfect delivery.  This example drops each
message with probability `loss` (deterministic seeded PRNG) and runs the
optimal generalized-Fibonacci broadcast hardened with pipelined per-edge
acknowledgements: parents retransmit until each child confirms.

Shown below: the lossless overhead of the ACK machinery (at most one send
unit per tree level), the degradation curve as loss grows, and a replayed
run's retransmission ledger.

Run:  python examples/unreliable_network.py
"""

from fractions import Fraction

from repro import postal_f, time_repr
from repro.core.bcast import bcast_tree
from repro.extensions.faulty import default_rto, run_reliable_bcast
from repro.report.tables import format_table

N = 32
LAM = Fraction(5, 2)


def main() -> None:
    f = postal_f(LAM, N)
    tree = bcast_tree(N, LAM)
    depth = max(tree.depth_of(p) for p in range(N))
    print(
        f"Machine: MPS({N}, {time_repr(LAM)}); loss-free optimum "
        f"f = {time_repr(f)}, tree depth = {depth}, "
        f"retransmission timeout = {time_repr(default_rto(LAM))}\n"
    )

    rows = []
    for loss in (0.0, 0.05, 0.15, 0.3, 0.5):
        seeds = (0,) if loss == 0 else tuple(range(6))
        runs = [run_reliable_bcast(N, LAM, loss=loss, seed=s) for s in seeds]
        avg_t = sum(float(t) for t, _, _ in runs) / len(runs)
        avg_rtx = sum(r for _, r, _ in runs) / len(runs)
        avg_drop = sum(d for _, _, d in runs) / len(runs)
        rows.append([f"{loss:.0%}", f"{avg_t:.1f}", f"{avg_t / float(f):.2f}x",
                     f"{avg_rtx:.1f}", f"{avg_drop:.1f}"])
    print(format_table(
        ["loss", "avg completion", "vs optimum", "avg retransmits", "avg drops"],
        rows,
    ))

    t, rtx, drops = run_reliable_bcast(N, LAM, loss=0.3, seed=7)
    t2, rtx2, drops2 = run_reliable_bcast(N, LAM, loss=0.3, seed=7)
    assert (t, rtx, drops) == (t2, rtx2, drops2)
    print(
        f"\nReplay determinism: seed 7 at 30% loss always completes at "
        f"t = {time_repr(t)} with {rtx} retransmissions covering {drops} drops."
    )
    print(
        "\nTakeaway: the optimal tree plus per-edge stop-and-wait keeps the\n"
        "lossless overhead to one send unit per level, and degrades smoothly\n"
        "(roughly one RTO per lost edge message) instead of failing."
    )


if __name__ == "__main__":
    main()
