#!/usr/bin/env python3
"""The paper's letter-mail analogy, simulated end to end.

Section 1 motivates the postal model with people in a metropolitan area who
can only communicate by mail: anyone can write to anyone (full
connectivity), writing a letter takes a fixed effort, and every letter
takes the same while to be delivered (uniform latency) — and crucially,
unlike a telephone call, you can drop many letters in the mailbox before
the first one arrives (send-and-forget).

Here a newsletter editor (p0) must distribute m issues to n subscribers.
We simulate the three Section-4.2 strategies as real event-driven programs
on the postal machine and watch the mail flow, including each subscriber's
receive log and the order-preservation guarantee.

Run:  python examples/metropolitan_mail.py
"""

from fractions import Fraction

from repro import (
    PackProtocol,
    PipelineProtocol,
    RepeatProtocol,
    multi_lower_bound,
    run_protocol,
    time_repr,
)
from repro.core.orderpres import arrival_sequences, check_order_preserving
from repro.report.tables import format_table

SUBSCRIBERS = 10  # n - 1 readers + the editor
ISSUES = 3  # m newsletters
POSTAL_DELAY = Fraction(5, 2)  # one letter takes 2.5 writing-times to arrive


def main() -> None:
    n, m, lam = SUBSCRIBERS, ISSUES, POSTAL_DELAY
    print(
        f"Newsletter dissemination: {m} issues to {n - 1} readers, "
        f"postal delay lambda = {time_repr(lam)}\n"
    )

    rows = []
    schedules = {}
    for proto in (
        RepeatProtocol(n, m, lam),
        PackProtocol(n, m, lam),
        PipelineProtocol(n, m, lam),
    ):
        result = run_protocol(proto)
        check_order_preserving(result.schedule)  # issues arrive in order
        schedules[proto.name] = result.schedule
        rows.append(
            [
                proto.name,
                result.completion_time,
                result.sends,
                "yes",
            ]
        )
    lb = multi_lower_bound(n, m, lam)
    print(format_table(["strategy", "last delivery", "letters", "in order?"], rows))
    print(f"\nLemma 8 lower bound: {time_repr(lb)}")

    # One reader's mailbox, under the pipeline strategy
    pipeline_sched = schedules["PIPELINE"]
    reader = n - 1
    print(f"\nReader p{reader}'s mailbox (PIPELINE):")
    for arrived, issue in arrival_sequences(pipeline_sched)[reader]:
        print(f"  issue #{issue + 1} delivered at t = {time_repr(arrived)}")

    # Who forwarded mail to whom?
    forwarders = sorted(
        {e.sender for e in pipeline_sched.events if e.sender != 0}
    )
    print(
        f"\n{len(forwarders)} readers helped forward issues "
        f"(the send-and-forget medium turns readers into relays): "
        f"{', '.join(f'p{p}' for p in forwarders)}"
    )


if __name__ == "__main__":
    main()
