#!/usr/bin/env python3
"""Choosing a multi-message broadcast algorithm for a parallel machine.

The paper's introduction motivates the postal model with machines like the
CM-5, the J-machine, and IBM Vulcan, where software/hardware overheads make
lambda substantially larger than 1.  This example plays the role of a
collective-communication library tuner: for each (n, m, lambda) it computes
the exact running time of every algorithm family (REPEAT, PACK, PIPELINE,
and the DTREE shapes) and picks the winner, printing the crossover map and
the margin over the Lemma 8 lower bound.

Run:  python examples/collective_tuning.py
"""

from fractions import Fraction

from repro import algorithm_times, best_algorithm, multi_lower_bound, time_repr
from repro.report.phase import phase_diagram
from repro.report.tables import format_table


MACHINES = {
    # name: (n processors, lambda) — latencies in send-time units
    "small-cluster": (16, Fraction(3, 2)),
    "cm5-like": (64, Fraction(5, 2)),
    "wan-connected": (32, Fraction(12)),
}

MESSAGE_COUNTS = [1, 4, 16, 64, 256]


def main() -> None:
    for name, (n, lam) in MACHINES.items():
        print(f"\n### {name}: n = {n}, lambda = {time_repr(lam)}\n")
        rows = []
        for m in MESSAGE_COUNTS:
            times = algorithm_times(n, m, lam)
            winner, t = best_algorithm(n, m, lam)
            lb = multi_lower_bound(n, m, lam)
            rows.append(
                [
                    m,
                    winner,
                    t,
                    f"{float(t / lb):.2f}x",
                    times["REPEAT"],
                    times["PACK"],
                    times["PIPELINE"],
                    times["DTREE-LINE"],
                ]
            )
        print(
            format_table(
                ["m", "winner", "time", "vs LB", "REPEAT", "PACK",
                 "PIPELINE", "LINE"],
                rows,
            )
        )

    print("\n### The full phase diagram (n = 24)\n")
    print(
        phase_diagram(
            24,
            [1, 2, 4, 8, 16, 32, 64],
            [1, "3/2", 2, "5/2", 4, 8, 16],
            show_ratio=True,
        )
    )
    print(
        "\nReading the map: with one message the winner always achieves the\n"
        "optimal f_lambda(n); as m grows, pipelining families take over; at\n"
        "high lambda and small m, PACK's renormalized latency pays off."
    )


if __name__ == "__main__":
    main()
