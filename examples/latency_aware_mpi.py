#!/usr/bin/env python3
"""A latency-aware MPI: every collective priced in postal-model time.

This example uses the mpi4py-style facade to run a small "application
phase" — broadcast a model, scatter shards, compute, reduce the results,
synchronize — on a simulated 24-rank machine, and contrasts the optimal
generalized-Fibonacci broadcast against what a latency-oblivious library
(binomial tree, optimal only in the telephone model) would pay.

Run:  python examples/latency_aware_mpi.py
"""

from fractions import Fraction

from repro import BinomialProtocol, SimComm, postal_f, run_protocol, time_repr
from repro.report.tables import format_table

RANKS = 24
LAM = Fraction(4)  # a network where delivery costs 4 send-times


def main() -> None:
    comm = SimComm(RANKS, LAM)
    print(f"Simulated machine: {comm.Get_size()} ranks, lambda = {time_repr(LAM)}\n")

    # --- an application phase, every step exactly priced ---------------
    steps = []

    out = comm.bcast({"model": "weights-v1"})
    steps.append(["bcast model", out.algorithm, out.time, out.sends])

    out = comm.scatter([f"shard-{i}" for i in range(RANKS)])
    steps.append(["scatter shards", out.algorithm, out.time, out.sends])

    out = comm.reduce([i * i for i in range(RANKS)])
    steps.append([f"reduce (sum={out.values})", out.algorithm, out.time, out.sends])

    out = comm.allgather([f"stat-{i}" for i in range(RANKS)])
    steps.append(["allgather stats", out.algorithm, out.time, out.sends])

    out = comm.barrier()
    steps.append(["barrier", out.algorithm, out.time, out.sends])

    print(format_table(["step", "algorithm", "time", "messages"], steps))
    total = sum(row[2] for row in steps)
    print(f"\nphase total (collectives run back to back): {time_repr(total)}")

    # --- latency-aware vs latency-oblivious broadcast -------------------
    print("\nBroadcast: generalized Fibonacci tree vs binomial tree")
    rows = []
    for n in (8, 24, 64, 256):
        opt = postal_f(LAM, n)
        binom = run_protocol(BinomialProtocol(n, LAM)).completion_time
        rows.append([n, opt, binom, f"{float(binom / opt):.2f}x"])
    print(format_table(["ranks", "BCAST (optimal)", "binomial", "penalty"], rows))
    print(
        "\nThe binomial tree pays the full latency every round "
        "(~lambda * log2 n); the Fibonacci tree keeps senders busy during "
        "deliveries (~lambda * log n / log(lambda+1))."
    )


if __name__ == "__main__":
    main()
