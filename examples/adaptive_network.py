#!/usr/bin/env python3
"""Beyond uniform lambda: the Section-5 research directions, working.

Three extensions the paper proposes as future work, implemented and
compared:

1. **Time-varying latency** — a network whose lambda changes mid-broadcast
   (e.g. a congestion spike).  The eager adaptive strategy needs no
   latency knowledge and matches the optimum on constant profiles, while a
   tree planned for the wrong lambda pays a measurable penalty.
2. **Hierarchical latency** — clusters with fast local links and slow
   global links; the two-phase (leaders-then-clusters) broadcast with
   overlap beats a flat broadcast that assumes the worst latency.
3. **LogP correspondence** — the postal model is LogP with g = o; the
   identity is checked numerically.

Run:  python examples/adaptive_network.py
"""

from fractions import Fraction

from repro import postal_f, time_repr
from repro.extensions.adaptive import (
    LatencyProfile,
    adaptive_bcast_time,
    static_tree_under_profile,
)
from repro.extensions.hierarchical import (
    HierarchicalSystem,
    flat_bcast_time,
    hierarchical_bcast_time,
)
from repro.extensions.logp import LogPParams, logp_bcast_time, postal_lambda_of
from repro.report.tables import format_table


def time_varying() -> None:
    print("### 1. Time-varying latency\n")
    n = 64
    spike = LatencyProfile.of([(0, 2), (4, 6), (12, 2)])  # congestion burst
    rows = [
        [
            "eager (adaptive)",
            adaptive_bcast_time(n, spike),
        ],
        [
            "tree planned for lambda=2",
            static_tree_under_profile(n, 2, spike),
        ],
        [
            "tree planned for lambda=6",
            static_tree_under_profile(n, 6, spike),
        ],
    ]
    print(format_table(["strategy", "completion"], rows))
    print(
        "\n(The eager strategy sends to a fresh processor every time unit\n"
        "and needs no estimate of lambda at all.)\n"
    )


def hierarchy() -> None:
    print("### 2. Hierarchical latency\n")
    rows = []
    for k, c, ll, lg in ((8, 32, 1, 12), (16, 16, 2, 8)):
        sys_ = HierarchicalSystem.of(k, c, ll, lg)
        rows.append(
            [
                f"{k} x {c}",
                time_repr(sys_.lam_local),
                time_repr(sys_.lam_global),
                flat_bcast_time(sys_),
                hierarchical_bcast_time(sys_, overlap=False),
                hierarchical_bcast_time(sys_, overlap=True),
            ]
        )
    print(
        format_table(
            ["clusters", "lam_loc", "lam_glob", "flat", "two-phase", "overlapped"],
            rows,
        )
    )
    print()


def logp() -> None:
    print("### 3. LogP correspondence (g = o)\n")
    rows = []
    for L, o in ((2, 1), (6, 1), (3, Fraction(1, 2))):
        params = LogPParams.of(L, o, o, 64)
        lam = postal_lambda_of(params)
        rows.append(
            [
                L,
                time_repr(Fraction(o)),
                time_repr(lam),
                logp_bcast_time(params),
                params.o * postal_f(lam, 64),
            ]
        )
    print(
        format_table(
            ["L", "o=g", "postal lambda", "LogP optimum", "o*f_lambda(P)"],
            rows,
        )
    )
    print("\nThe last two columns agree exactly: LogP(g=o) IS the postal model.")


def main() -> None:
    time_varying()
    hierarchy()
    logp()


if __name__ == "__main__":
    main()
