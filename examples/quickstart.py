#!/usr/bin/env python3
"""Quickstart: the postal model in five minutes.

Reproduces the paper's running example — broadcasting one message among
n = 14 processors with communication latency lambda = 2.5 — four ways:

1. the closed form  f_lambda(n)                    (Theorem 6),
2. the static schedule built by Algorithm BCAST    (Section 3),
3. a full event-driven simulation on MPS(n, lambda),
4. the MPI-style facade.

Run:  python examples/quickstart.py
"""

from fractions import Fraction

from repro import (
    BcastProtocol,
    SimComm,
    bcast_schedule,
    bcast_tree,
    postal_F,
    postal_f,
    render_gantt,
    render_tree,
    run_protocol,
    time_repr,
)

N = 14
LAM = Fraction(5, 2)  # the paper's lambda = 2.5


def main() -> None:
    # 1. closed form ----------------------------------------------------
    t_opt = postal_f(LAM, N)
    print(f"f_{{{time_repr(LAM)}}}({N}) = {time_repr(t_opt)}   (Theorem 6 optimum)")
    print(
        f"F_{{{time_repr(LAM)}}}(t): within t = {time_repr(t_opt)} time units, "
        f"at most {postal_F(LAM, t_opt)} processors can be informed"
    )

    # 2. static schedule -------------------------------------------------
    sched = bcast_schedule(N, LAM)  # validates against the postal model
    assert sched.completion_time() == t_opt
    print(f"\nAlgorithm BCAST: {len(sched)} sends, completes at "
          f"t = {time_repr(sched.completion_time())}")
    print("\nThe generalized Fibonacci broadcast tree (paper Figure 1):")
    print(render_tree(bcast_tree(N, LAM)))

    # 3. event-driven simulation -----------------------------------------
    result = run_protocol(BcastProtocol(N, LAM))
    assert result.schedule == sched, "simulation and builder must agree"
    print("\nEvent-driven simulation realizes the identical schedule.")
    print("\nPort timeline (S = sending, R = receiving, * = both):")
    print(render_gantt(sched))

    # 4. the MPI-style facade --------------------------------------------
    comm = SimComm(N, LAM)
    out = comm.bcast("hello, postal world")
    print(
        f"\nSimComm.bcast -> every rank got {out.values[0]!r} in "
        f"t = {time_repr(out.time)} using {out.sends} messages"
    )


if __name__ == "__main__":
    main()
